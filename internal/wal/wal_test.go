package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// emitAll adapts a record slice to Checkpoint's streaming fill callback.
func emitAll(recs [][]byte) func(emit func(rec []byte)) {
	return func(emit func(rec []byte)) {
		for _, r := range recs {
			emit(r)
		}
	}
}

// replayAll opens the log and collects every replayed record.
func replayAll(t *testing.T, dir string, opts Options) (*Log, [][]byte) {
	t.Helper()
	var recs [][]byte
	l, err := Open(dir, opts, func(rec []byte) error {
		recs = append(recs, append([]byte(nil), rec...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return l, recs
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, recs := replayAll(t, dir, Options{})
	if len(recs) != 0 {
		t.Fatalf("fresh log replayed %d records", len(recs))
	}
	var want [][]byte
	for i := 0; i < 100; i++ {
		rec := []byte(fmt.Sprintf("record-%03d", i))
		want = append(want, rec)
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	// A batched commit (group commit) replays in order too.
	batch := [][]byte{[]byte("batch-a"), []byte("batch-b"), []byte("batch-c")}
	want = append(want, batch...)
	if err := l.Append(batch...); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, got := replayAll(t, dir, Options{})
	defer l2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestSegmentRollAndReopenAppend(t *testing.T) {
	dir := t.TempDir()
	l, _ := replayAll(t, dir, Options{SegmentBytes: 64})
	for i := 0; i < 40; i++ {
		if err := l.Append([]byte(fmt.Sprintf("payload-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, _, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("expected multiple segments, got %d", len(segs))
	}

	// Reopen, append more, and verify both generations replay.
	l2, got := replayAll(t, dir, Options{SegmentBytes: 64})
	if len(got) != 40 {
		t.Fatalf("replayed %d records, want 40", len(got))
	}
	if err := l2.Append([]byte("after-reopen")); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	l3, got := replayAll(t, dir, Options{SegmentBytes: 64})
	defer l3.Close()
	if len(got) != 41 || string(got[40]) != "after-reopen" {
		t.Fatalf("replayed %d records, tail %q", len(got), got[len(got)-1])
	}
}

func TestTornFinalRecordTruncated(t *testing.T) {
	dir := t.TempDir()
	l, _ := replayAll(t, dir, Options{})
	for i := 0; i < 5; i++ {
		if err := l.Append([]byte(fmt.Sprintf("whole-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Simulate a crash mid-commit: append a frame missing its last bytes.
	segs, _, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, fileName(segs[len(segs)-1], segSuffix))
	torn := appendFrame(nil, []byte("torn-record"))
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn[:len(torn)-4]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, got := replayAll(t, dir, Options{})
	if len(got) != 5 {
		t.Fatalf("replayed %d records, want 5 (torn tail dropped)", len(got))
	}
	// The torn tail must have been truncated so new appends land cleanly.
	if err := l2.Append([]byte("after-torn")); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	l3, got := replayAll(t, dir, Options{})
	defer l3.Close()
	if len(got) != 6 || string(got[5]) != "after-torn" {
		t.Fatalf("after truncation replayed %v", got)
	}
}

func TestCorruptMiddleRecordFailsOpen(t *testing.T) {
	dir := t.TempDir()
	l, _ := replayAll(t, dir, Options{})
	for i := 0; i < 3; i++ {
		if err := l.Append(bytes.Repeat([]byte{byte('a' + i)}, 32)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, _, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, fileName(segs[0], segSuffix))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[10] ^= 0xff // flip a payload byte of the first record
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open(dir, Options{}, func([]byte) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open with mid-log corruption: err = %v, want ErrCorrupt", err)
	}
}

func TestCheckpointPrunesSegments(t *testing.T) {
	dir := t.TempDir()
	l, _ := replayAll(t, dir, Options{SegmentBytes: 64})
	for i := 0; i < 30; i++ {
		if err := l.Append([]byte(fmt.Sprintf("pre-checkpoint-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	snapshot := [][]byte{[]byte("state-a"), []byte("state-b")}
	if err := l.Checkpoint(emitAll(snapshot)); err != nil {
		t.Fatal(err)
	}
	if since := l.SinceCheckpoint(); since != 0 {
		t.Fatalf("SinceCheckpoint = %d after checkpoint", since)
	}
	if err := l.Append([]byte("post-checkpoint")); err != nil {
		t.Fatal(err)
	}
	l.Close()

	segs, snapSeq, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if snapSeq == 0 {
		t.Fatal("no snapshot on disk after Checkpoint")
	}
	if len(segs) != 1 {
		t.Fatalf("segments after checkpoint = %v, want exactly the active one", segs)
	}

	l2, got := replayAll(t, dir, Options{SegmentBytes: 64})
	defer l2.Close()
	want := []string{"state-a", "state-b", "post-checkpoint"}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records %q, want %q", len(got), got, want)
	}
	for i, w := range want {
		if string(got[i]) != w {
			t.Fatalf("record %d = %q, want %q", i, got[i], w)
		}
	}
}

// TestRepeatedCheckpointsLeaveOneSnapshot regresses the stale-snapshot
// leak: when segments roll between checkpoints, the previous snapshot has a
// non-adjacent sequence number and must still be deleted.
func TestRepeatedCheckpointsLeaveOneSnapshot(t *testing.T) {
	dir := t.TempDir()
	l, _ := replayAll(t, dir, Options{SegmentBytes: 64})
	countSnaps := func() int {
		n := 0
		entries, _ := os.ReadDir(dir)
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), snapSuffix) {
				n++
			}
		}
		return n
	}
	for round := 0; round < 3; round++ {
		// Enough appends to roll several segments between checkpoints.
		for i := 0; i < 20; i++ {
			if err := l.Append([]byte(fmt.Sprintf("round-%d-%02d", round, i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Checkpoint(emitAll([][]byte{[]byte(fmt.Sprintf("state-%d", round))})); err != nil {
			t.Fatal(err)
		}
		if got := countSnaps(); got != 1 {
			t.Fatalf("round %d: %d snapshots on disk, want 1", round, got)
		}
	}
	l.Close()

	// A reopen after the rounds must also keep exactly one snapshot and
	// replay only the newest state.
	l2, recs := replayAll(t, dir, Options{SegmentBytes: 64})
	defer l2.Close()
	if len(recs) != 1 || string(recs[0]) != "state-2" {
		t.Fatalf("replayed %q, want just state-2", recs)
	}
	if err := l2.Checkpoint(emitAll([][]byte{[]byte("state-3")})); err != nil {
		t.Fatal(err)
	}
	if got := countSnaps(); got != 1 {
		t.Fatalf("after reopen+checkpoint: %d snapshots, want 1", got)
	}
}

func TestStaleTmpFilesRemoved(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "checkpoint"+tmpSuffix), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, recs := replayAll(t, dir, Options{})
	defer l.Close()
	if len(recs) != 0 {
		t.Fatalf("replayed %d records from junk", len(recs))
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), tmpSuffix) {
			t.Fatalf("stale temp file %s survived Open", e.Name())
		}
	}
}

func TestClosedLogErrors(t *testing.T) {
	dir := t.TempDir()
	l, _ := replayAll(t, dir, Options{})
	l.Close()
	if err := l.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append on closed log: %v", err)
	}
	if err := l.Checkpoint(emitAll(nil)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Checkpoint on closed log: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

// readAll collects every record a ReadFrom cursor yields.
func readAll(t *testing.T, l *Log, seq uint64) (recs [][]byte, segs []uint64) {
	t.Helper()
	if err := l.ReadFrom(seq, func(seg uint64, rec []byte) error {
		recs = append(recs, append([]byte(nil), rec...))
		segs = append(segs, seg)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return recs, segs
}

// TestReadFromCursorLiveLog: the cursor replays every committed record of a
// live, multi-segment log in order, without disturbing the append path, and
// records committed after the cursor starts are excluded from it but seen by
// a later cursor.
func TestReadFromCursorLiveLog(t *testing.T) {
	dir := t.TempDir()
	l, _ := replayAll(t, dir, Options{SegmentBytes: 256, NoSync: true})
	defer l.Close()
	var want [][]byte
	for i := 0; i < 40; i++ {
		rec := []byte(fmt.Sprintf("cursor-record-%03d", i))
		want = append(want, rec)
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	recs, segs := readAll(t, l, 0)
	if len(recs) != len(want) {
		t.Fatalf("cursor yielded %d records, want %d", len(recs), len(want))
	}
	for i := range want {
		if !bytes.Equal(recs[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, recs[i], want[i])
		}
	}
	for i := 1; i < len(segs); i++ {
		if segs[i] < segs[i-1] {
			t.Fatalf("cursor segment order regressed: %v", segs)
		}
	}
	// Appends during/after a cursor are invisible to it but not lost.
	if err := l.Append([]byte("after")); err != nil {
		t.Fatal(err)
	}
	recs2, _ := readAll(t, l, 0)
	if len(recs2) != len(want)+1 {
		t.Fatalf("second cursor yielded %d records, want %d", len(recs2), len(want)+1)
	}
}

// TestReadFromStartsMidLog: a cursor from a later segment skips the earlier
// segments entirely.
func TestReadFromStartsMidLog(t *testing.T) {
	dir := t.TempDir()
	l, _ := replayAll(t, dir, Options{SegmentBytes: 64, NoSync: true})
	defer l.Close()
	for i := 0; i < 30; i++ {
		if err := l.Append([]byte(fmt.Sprintf("mid-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	all, segs := readAll(t, l, 0)
	if segs[len(segs)-1] < 3 {
		t.Fatalf("log rolled only to segment %d; shrink SegmentBytes", segs[len(segs)-1])
	}
	cut := segs[len(segs)-1] // the active segment
	part, partSegs := readAll(t, l, cut)
	if len(part) == 0 || len(part) >= len(all) {
		t.Fatalf("cursor from segment %d yielded %d of %d records", cut, len(part), len(all))
	}
	for _, s := range partSegs {
		if s < cut {
			t.Fatalf("cursor from %d yielded a record of segment %d", cut, s)
		}
	}
	if !bytes.Equal(part[len(part)-1], all[len(all)-1]) {
		t.Fatal("mid-log cursor lost the tail record")
	}
}

// TestReadFromIncludesSnapshot: after a checkpoint, a cursor from 0 replays
// the snapshot (attributed to the floor sequence) and then the younger
// segments; SnapshotSeq exposes the floor.
func TestReadFromIncludesSnapshot(t *testing.T) {
	dir := t.TempDir()
	l, _ := replayAll(t, dir, Options{NoSync: true})
	defer l.Close()
	for i := 0; i < 5; i++ {
		if err := l.Append([]byte(fmt.Sprintf("pre-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Checkpoint(emitAll([][]byte{[]byte("snap-0"), []byte("snap-1")})); err != nil {
		t.Fatal(err)
	}
	floor := l.SnapshotSeq()
	if floor == 0 {
		t.Fatal("SnapshotSeq = 0 after a checkpoint")
	}
	if err := l.Append([]byte("post-0")); err != nil {
		t.Fatal(err)
	}
	recs, segs := readAll(t, l, 0)
	want := []string{"snap-0", "snap-1", "post-0"}
	if len(recs) != len(want) {
		t.Fatalf("cursor yielded %d records %q, want %v", len(recs), recs, want)
	}
	for i, w := range want {
		if string(recs[i]) != w {
			t.Fatalf("record %d = %q, want %q", i, recs[i], w)
		}
	}
	if segs[0] != floor || segs[1] != floor {
		t.Fatalf("snapshot records attributed to segments %v, want floor %d", segs[:2], floor)
	}
	if segs[2] <= floor {
		t.Fatalf("post-checkpoint record attributed to segment %d ≤ floor %d", segs[2], floor)
	}
	// A cursor strictly above the floor skips the compacted history.
	recs2, _ := readAll(t, l, floor+1)
	if len(recs2) != 1 || string(recs2[0]) != "post-0" {
		t.Fatalf("cursor above the floor yielded %q, want just post-0", recs2)
	}
}

// TestReadFromClosedLog: the cursor refuses a closed log.
func TestReadFromClosedLog(t *testing.T) {
	dir := t.TempDir()
	l, _ := replayAll(t, dir, Options{NoSync: true})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.ReadFrom(0, func(uint64, []byte) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("ReadFrom on a closed log = %v, want ErrClosed", err)
	}
}

// TestReadFromCursorSurvivesCheckpointPrune pins the catch-up cursor's
// crash-consistency contract against compaction: a checkpoint that runs —
// and prunes every old segment — while a ReadFrom iteration is mid-stream
// must not disturb the iteration. The cursor pinned its files open at the
// boundary capture, so it keeps serving the captured records from the
// unlinked files; afterwards the snapshot floor has moved, and a resumed
// cursor whose sequence fell at or below the new floor is served the
// snapshot first — the "resume floor stays correct" half of the contract
// that a replication catch-up stream racing a GC-triggered checkpoint
// relies on.
func TestReadFromCursorSurvivesCheckpointPrune(t *testing.T) {
	dir := t.TempDir()
	l, _ := replayAll(t, dir, Options{SegmentBytes: 64, NoSync: true})
	defer l.Close()
	var want [][]byte
	for i := 0; i < 30; i++ {
		rec := []byte(fmt.Sprintf("pinned-%03d", i))
		want = append(want, rec)
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	segsBefore := segmentFiles(t, dir)
	if len(segsBefore) < 3 {
		t.Fatalf("only %d segments on disk; shrink SegmentBytes", len(segsBefore))
	}

	// Mid-iteration, compact the whole history into a snapshot: the old
	// segments are pruned from disk while the cursor still needs them.
	var got [][]byte
	checkpointed := false
	if err := l.ReadFrom(0, func(seg uint64, rec []byte) error {
		got = append(got, append([]byte(nil), rec...))
		if !checkpointed {
			checkpointed = true
			if err := l.Checkpoint(emitAll([][]byte{[]byte("compacted")})); err != nil {
				return err
			}
			if after := segmentFiles(t, dir); len(after) >= len(segsBefore) {
				t.Fatalf("checkpoint pruned nothing (%d -> %d segments); the race has no teeth",
					len(segsBefore), len(after))
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("cursor served %d records across the prune, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q (pinned file misread)", i, got[i], want[i])
		}
	}

	// The floor moved; a resume at or below it is redirected through the
	// snapshot, and one above it sees only post-checkpoint appends.
	floor := l.SnapshotSeq()
	if floor == 0 {
		t.Fatal("SnapshotSeq = 0 after the mid-cursor checkpoint")
	}
	if err := l.Append([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	recs, segs := readAll(t, l, 1)
	if len(recs) != 2 || string(recs[0]) != "compacted" || string(recs[1]) != "tail" {
		t.Fatalf("resumed cursor yielded %q, want [compacted tail]", recs)
	}
	if segs[0] != floor {
		t.Fatalf("snapshot record attributed to segment %d, want the floor %d", segs[0], floor)
	}
	recs2, _ := readAll(t, l, floor+1)
	if len(recs2) != 1 || string(recs2[0]) != "tail" {
		t.Fatalf("cursor above the floor yielded %q, want just the tail", recs2)
	}
}

// segmentFiles lists the live segment files in dir.
func segmentFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".wal") {
			segs = append(segs, e.Name())
		}
	}
	return segs
}
