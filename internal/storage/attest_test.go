package storage

import (
	"testing"

	"repro/internal/item"
	"repro/internal/vclock"
)

// TestAttestVVRestoresFloor: an attested entry with no backing version
// record must survive a restart — that is the whole point of attestation
// (a heartbeat-advanced VV entry would otherwise collapse to the last
// stored version and break the GC/recovery invariant).
func TestAttestVVRestoresFloor(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d.Insert(durableVersion("k", 0, 10, vclock.VC{0, 0}))
	if got := d.AttestVV(vclock.VC{10, 500}); !got.Equal(vclock.VC{10, 500}) {
		t.Fatalf("AttestVV = %v", got)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.RecoveredVV(); !got.Equal(vclock.VC{10, 500}) {
		t.Fatalf("RecoveredVV = %v, want [10 500]", got)
	}
	// The attestation is floor bookkeeping, not history: catch-up streams
	// must not see it.
	n := 0
	if err := r.ForEachDurable(func(*item.Version) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("durable stream has %d records, want 1 version", n)
	}
}

// TestAttestVVSurvivesCheckpoint: checkpoints rewrite the log from the
// surviving versions; the attestation floor must be re-emitted or the
// truncation would silently lower the recovered VV.
func TestAttestVVSurvivesCheckpoint(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, DurableOptions{CheckpointBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	d.AttestVV(vclock.VC{0, 900})
	for i := 1; i <= 8; i++ {
		d.Insert(durableVersion("k", 0, vclock.Timestamp(i*10), vclock.VC{0, 0}))
	}
	// Prune and checkpoint: the pre-checkpoint segments (holding the
	// attestation record) are truncated away.
	d.CollectGarbage(vclock.VC{80, 900})
	if d.log.SnapshotSeq() == 0 {
		t.Fatal("checkpoint did not run; test needs the truncation")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.RecoveredVV(); got.Get(1) != 900 {
		t.Fatalf("RecoveredVV = %v, attestation lost by checkpoint", got)
	}
}

// TestAttestVVNoAdvanceIsFree: a covered attestation must not append —
// the fast path is what keeps per-GC-cycle attestation cheap.
func TestAttestVVNoAdvanceIsFree(t *testing.T) {
	d, err := OpenDurable(t.TempDir(), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	d.AttestVV(vclock.VC{100, 100})
	before := d.DurableStats().Records
	for i := 0; i < 50; i++ {
		d.AttestVV(vclock.VC{50, 100})
	}
	if after := d.DurableStats().Records; after != before {
		t.Fatalf("covered attestations appended: records %d -> %d", before, after)
	}
}

// TestAttestDoesNotDefeatRangeIndex: attestation records are neutral to
// the WAL's per-segment range index — a segment carrying one must remain
// skippable for catch-up ranges that cannot intersect its versions.
func TestAttestDoesNotDefeatRangeIndex(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, DurableOptions{SegmentBytes: 512, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	// Interleave attestations with enough versions to roll several
	// segments, so every sealed segment holds attestation records.
	for i := 1; i <= 200; i++ {
		d.Insert(durableVersion("k", 0, vclock.Timestamp(i), vclock.VC{0}))
		d.AttestVV(vclock.VC{vclock.Timestamp(i)})
	}
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	if len(walSegments(t, dir)) < 3 {
		t.Fatal("writes did not roll enough segments for a meaningful skip test")
	}
	// A range above all stored versions must skip the sealed segments.
	if err := d.ForEachDurableRange(vclock.VC{10000}, vclock.VC{20000}, func(*item.Version) error {
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	st := d.DurableStats()
	if st.SeekHits != 1 || st.PartsSkipped == 0 {
		t.Fatalf("attestations defeated the range index: hits=%d skipped=%d", st.SeekHits, st.PartsSkipped)
	}
}
