package storage

import (
	"strconv"
	"testing"

	"repro/internal/item"
	"repro/internal/vclock"
)

// TestInsertBatchMatchesInsert: a batched apply yields exactly the state of
// one-at-a-time inserts — same chains, same LWW order, same idempotency.
func TestInsertBatchMatchesInsert(t *testing.T) {
	var vs []*item.Version
	for i := 0; i < 100; i++ {
		vs = append(vs, &item.Version{
			Key:        "k" + strconv.Itoa(i%7),
			Value:      []byte{byte(i)},
			SrcReplica: i % 3,
			UpdateTime: vclock.Timestamp(100 - i), // reverse order stresses insertion
			Deps:       vclock.New(3),
		})
	}
	one, batch := New(), New()
	for _, v := range vs {
		one.Insert(v)
	}
	batch.InsertBatch(vs)
	batch.InsertBatch(vs) // replay must be idempotent

	if one.Versions() != batch.Versions() {
		t.Fatalf("versions: %d vs %d", one.Versions(), batch.Versions())
	}
	for i := 0; i < 7; i++ {
		k := "k" + strconv.Itoa(i)
		a, b := one.Head(k), batch.Head(k)
		if a == nil || b == nil || !a.Same(b) {
			t.Fatalf("key %s heads differ: %+v vs %+v", k, a, b)
		}
	}
}

func TestInsertBatchEmptyAndSingle(t *testing.T) {
	s := New()
	s.InsertBatch(nil)
	s.InsertBatch([]*item.Version{})
	if s.Versions() != 0 {
		t.Fatal("empty batches must be no-ops")
	}
	s.InsertBatch([]*item.Version{{Key: "a", UpdateTime: 1, Deps: vclock.New(3)}})
	if s.Versions() != 1 || s.Head("a") == nil {
		t.Fatal("single-version batch not applied")
	}
}

// TestStatsSinglePass: Stats agrees with Keys and Versions.
func TestStatsSinglePass(t *testing.T) {
	s := New()
	for i := 0; i < 10; i++ {
		s.Insert(&item.Version{
			Key: "k" + strconv.Itoa(i%4), UpdateTime: vclock.Timestamp(i + 1),
			Deps: vclock.New(3),
		})
	}
	st := s.Stats()
	if st.Keys != 4 || st.Versions != 10 {
		t.Fatalf("stats = %+v, want 4 keys / 10 versions", st)
	}
	if s.Keys() != st.Keys || s.Versions() != st.Versions {
		t.Fatal("Keys/Versions disagree with Stats")
	}
}
