package storage

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/item"
	"repro/internal/vclock"
	"repro/internal/wal"
	"repro/internal/wire"
)

// defaultCheckpointBytes is how much WAL growth triggers a snapshot
// checkpoint at the next garbage-collection pass.
const defaultCheckpointBytes = 1 << 20

// DurableOptions tunes the durable engine. The zero value selects sane
// defaults (4 MiB segments, 1 MiB checkpoint trigger, fsync on every
// commit).
type DurableOptions struct {
	// SegmentBytes is the WAL segment roll size (0 = 4 MiB).
	SegmentBytes int64
	// CheckpointBytes is the WAL growth that arms a snapshot checkpoint,
	// taken on the next CollectGarbage call (the GC exchange is the
	// checkpoint cadence). 0 selects the default (1 MiB); negative disables
	// checkpointing (the log grows until Close).
	CheckpointBytes int64
	// NoSync skips the per-commit fsync, trading crash durability for
	// latency (useful for tests and benchmarks on slow filesystems).
	NoSync bool
}

// Durable is the crash-tolerant storage engine: a Mem engine fronting a
// segmented write-ahead log. Every Insert appends the version's wire
// encoding to the log before it becomes readable, and InsertBatch commits a
// whole replication batch with a single write+fsync (group commit). Snapshot
// checkpoints ride the garbage-collection exchange: after a GC pass prunes
// the chains, the engine serializes the surviving versions into a snapshot
// and truncates the log's segments.
//
// OpenDurable rebuilds the engine from disk — snapshot first, then the log
// tail, tolerating a torn final record — and reports the replayed
// version-vector floor via RecoveredVV, which the partition server uses to
// restore its VV after a crash.
//
// Write methods do not return errors (the Engine interface keeps the server
// hot path error-free); a failed append instead marks the engine sticky-
// failed: the in-memory state stays correct and serving, while Err and Close
// surface the first persistence error.
type Durable struct {
	mem *Mem
	log *wal.Log

	// mu serializes writers against checkpoints: Insert/InsertBatch hold it
	// shared (the WAL itself orders concurrent commits), Checkpoint and
	// Close hold it exclusively so the snapshot captures exactly the
	// appended state.
	mu sync.RWMutex

	checkpointBytes int64
	floor           vclock.VC // replayed VV floor, immutable after open
	werr            atomic.Pointer[error]

	// gcMu guards the compaction-floor bookkeeping: gcHigh accumulates the
	// entry-wise maximum of every GC vector CollectGarbage has applied, and
	// compacted snapshots gcHigh at each checkpoint — the proof boundary for
	// catch-up serving. A version with UpdateTime at or below compacted[its
	// origin] may have been pruned from the log by a checkpoint, so a catch-up
	// range starting below that floor cannot be served incrementally
	// (internal/repl answers with a full resync instead).
	gcMu      sync.Mutex
	gcHigh    vclock.VC
	compacted vclock.VC
}

// OpenDurable opens (creating or recovering) a durable engine rooted at dir.
func OpenDurable(dir string, opts DurableOptions) (*Durable, error) {
	if opts.CheckpointBytes == 0 {
		opts.CheckpointBytes = defaultCheckpointBytes
	}
	mem := New()
	var floor vclock.VC
	log, err := wal.Open(dir, wal.Options{SegmentBytes: opts.SegmentBytes, NoSync: opts.NoSync},
		func(rec []byte) error {
			v, _, err := wire.DecodeVersion(rec)
			if err != nil {
				return err
			}
			mem.Insert(v)
			for len(floor) <= v.SrcReplica {
				floor = append(floor, 0)
			}
			if v.UpdateTime > floor[v.SrcReplica] {
				floor[v.SrcReplica] = v.UpdateTime
			}
			return nil
		})
	if err != nil {
		return nil, fmt.Errorf("storage: open durable: %w", err)
	}
	return &Durable{mem: mem, log: log, checkpointBytes: opts.CheckpointBytes, floor: floor}, nil
}

// RecoveredVV returns the version-vector floor replayed at open: entry i is
// the highest update timestamp of any recovered version originating at DC i.
func (d *Durable) RecoveredVV() vclock.VC { return d.floor.Clone() }

// Err returns the first persistence error, or nil. The in-memory state keeps
// serving after a failure, but durability is gone until the engine is
// reopened.
func (d *Durable) Err() error {
	if p := d.werr.Load(); p != nil {
		return *p
	}
	return nil
}

func (d *Durable) fail(err error) {
	if err != nil {
		d.werr.CompareAndSwap(nil, &err)
	}
}

// Insert logs the version, then installs it in memory. The version is
// durable before it becomes readable.
func (d *Durable) Insert(v *item.Version) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	d.fail(d.log.Append(wire.AppendVersion(nil, v)))
	d.mem.Insert(v)
}

// InsertBatch logs the whole batch as one commit — a single write and fsync
// on the replication-batch boundary — then installs it in one shard pass.
func (d *Durable) InsertBatch(vs []*item.Version) {
	if len(vs) == 0 {
		return
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	// Encode the whole batch into one arena and reslice it afterwards
	// (growth may move the buffer), keeping the allocation count constant
	// per batch instead of linear in its size.
	buf := make([]byte, 0, 48*len(vs))
	offs := make([]int, len(vs)+1)
	for i, v := range vs {
		buf = wire.AppendVersion(buf, v)
		offs[i+1] = len(buf)
	}
	recs := make([][]byte, len(vs))
	for i := range recs {
		recs[i] = buf[offs[i]:offs[i+1]]
	}
	d.fail(d.log.Append(recs...))
	d.mem.InsertBatch(vs)
}

// Head returns the chain head (the freshest version) for key, or nil.
func (d *Durable) Head(key string) *item.Version { return d.mem.Head(key) }

// ReadVisible returns the freshest version of key satisfying visible.
func (d *Durable) ReadVisible(key string, visible func(*item.Version) bool) ReadResult {
	return d.mem.ReadVisible(key, visible)
}

// ReadWithin returns the freshest version of key within the snapshot tv.
func (d *Durable) ReadWithin(key string, tv vclock.VC) ReadResult {
	return d.mem.ReadWithin(key, tv)
}

// CollectGarbage prunes the in-memory chains and, when the log has grown
// past the checkpoint threshold, writes a snapshot checkpoint of the pruned
// state and truncates the log — GC and log truncation advance together.
func (d *Durable) CollectGarbage(gv vclock.VC) int {
	d.gcMu.Lock()
	d.gcHigh = d.gcHigh.GrowTo(len(gv))
	d.gcHigh.MaxInPlace(gv)
	d.gcMu.Unlock()
	removed := d.mem.CollectGarbage(gv)
	if d.checkpointBytes > 0 && d.log.SinceCheckpoint() >= d.checkpointBytes {
		d.checkpoint()
	}
	return removed
}

// DropAbove removes src-originated versions above after from the in-memory
// chains. The log is left untouched (it may still hold them until the next
// checkpoint compacts the surviving state); callers re-apply the drop after
// recovery, seeded from the membership view's final timestamps.
func (d *Durable) DropAbove(src int, after vclock.Timestamp) int {
	return d.mem.DropAbove(src, after)
}

// CompactedFloor returns, per origin DC, the highest GC vector entry a
// snapshot checkpoint has compacted the log under. History at or below the
// floor survives only in pruned (snapshot) form: versions superseded at
// checkpoint time are gone, so an incremental catch-up range starting below
// the floor cannot be proven complete. Nil when no checkpoint has run.
func (d *Durable) CompactedFloor() vclock.VC {
	d.gcMu.Lock()
	defer d.gcMu.Unlock()
	return d.compacted.Clone()
}

// checkpoint streams the surviving versions into a snapshot while writers
// are held out, so the snapshot equals the log contents exactly. One encode
// scratch is reused for every record (the log frames each record into its
// own buffer before emit returns), keeping peak memory constant regardless
// of store size.
func (d *Durable) checkpoint() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.log.SinceCheckpoint() < d.checkpointBytes {
		return // another GC pass raced us here
	}
	// The GC passes folded into gcHigh all ran before this snapshot is cut,
	// so the snapshot's surviving state is exactly "pruned through gcHigh":
	// record it as the compaction floor before the log truncates.
	d.gcMu.Lock()
	floor := d.gcHigh.Clone()
	d.gcMu.Unlock()
	var scratch []byte
	d.fail(d.log.Checkpoint(func(emit func(rec []byte)) {
		d.mem.ForEachVersion(func(v *item.Version) {
			scratch = wire.AppendVersion(scratch[:0], v)
			emit(scratch)
		})
	}))
	d.gcMu.Lock()
	d.compacted = d.compacted.GrowTo(len(floor))
	d.compacted.MaxInPlace(floor)
	d.gcMu.Unlock()
}

// DurableFloor returns the WAL's snapshot floor — the segment sequence at
// and below which history exists only in compacted (snapshot) form.
// Observability today; the hook for segment-skipping catch-up reads later.
func (d *Durable) DurableFloor() uint64 { return d.log.SnapshotSeq() }

// ForEachDurable streams every durable version in committed order — the
// snapshot's compacted history first, then the log tail — decoding each
// record through the shared wire codec. It reads through a WAL cursor that
// pins its files open, so concurrent inserts and checkpoints proceed
// untouched; versions committed after the call starts are not included.
// This is the replication catch-up feed (internal/repl).
//
// A sticky persistence error fails the stream up front: once an append has
// failed, the log may be missing versions the in-memory state acknowledged,
// and a catch-up stream served from it would falsely claim completeness —
// the caller must fall back instead (repl answers Unsupported).
func (d *Durable) ForEachDurable(fn func(v *item.Version) error) error {
	if err := d.Err(); err != nil {
		return err
	}
	return d.log.ReadFrom(0, func(_ uint64, rec []byte) error {
		v, _, err := wire.DecodeVersion(rec)
		if err != nil {
			return err
		}
		return fn(v)
	})
}

// Stats counts keys and versions in a single pass.
func (d *Durable) Stats() StoreStats { return d.mem.Stats() }

// ForEachHead calls fn with every key's chain head.
func (d *Durable) ForEachHead(fn func(key string, head *item.Version)) { d.mem.ForEachHead(fn) }

// Close flushes and closes the log. It returns the first persistence error
// encountered over the engine's lifetime, if any.
func (d *Durable) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	cerr := d.log.Close()
	if err := d.Err(); err != nil {
		return err
	}
	return cerr
}
