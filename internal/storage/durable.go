package storage

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/item"
	"repro/internal/vclock"
	"repro/internal/wal"
	"repro/internal/wire"
)

// defaultCheckpointBytes is how much WAL growth triggers a snapshot
// checkpoint at the next garbage-collection pass.
const defaultCheckpointBytes = 1 << 20

// AckMode selects where on the durability ladder a local write is
// acknowledged. This is the one place the ladder is defined; every knob
// above (occ.Config.AckMode, pocckv -ack) maps onto it:
//
//	sync    — AckSync + fsync: the PUT returns only after its commit group
//	          is fsynced. A machine crash loses nothing acknowledged.
//	grouped — AckGrouped + fsync: the PUT returns after the in-memory insert
//	          and WAL staging; the background committer fsyncs the group it
//	          rides (bounded by the staging cap + one in-flight group). A
//	          process exit still loses nothing (Close drains the pipeline);
//	          a machine crash can lose the last instants of *local* acks —
//	          never anything the replication plane advanced a VV over or a
//	          catch-up stream claimed complete, because those wait on the
//	          WAL barrier (see Durable.ForEachDurable and wal.Log.Barrier).
//	nosync  — either ack mode + NoSync: no fsync anywhere; a machine crash
//	          may lose everything since the OS last flushed. For tests and
//	          benchmarks.
type AckMode int

const (
	// AckSync acknowledges a local write only after its commit group is
	// durable (the default).
	AckSync AckMode = iota
	// AckGrouped acknowledges a local write once it is staged on the commit
	// pipeline; durability trails by at most one in-flight commit group.
	AckGrouped
)

// DurableOptions tunes the durable engine. The zero value selects sane
// defaults (4 MiB segments, 1 MiB checkpoint trigger, fsync on every
// commit, synchronous acks).
type DurableOptions struct {
	// SegmentBytes is the WAL segment roll size (0 = 4 MiB).
	SegmentBytes int64
	// CheckpointBytes is the WAL growth that arms a snapshot checkpoint,
	// taken on the next CollectGarbage call (the GC exchange is the
	// checkpoint cadence). 0 selects the default (1 MiB); negative disables
	// checkpointing (the log grows until Close).
	CheckpointBytes int64
	// NoSync skips the per-commit fsync, trading crash durability for
	// latency (useful for tests and benchmarks on slow filesystems).
	NoSync bool
	// AckMode picks the rung of the durability ladder local writes ack at;
	// see AckMode. Replicated batches always commit synchronously — the
	// receiver's version-vector advancement (and the eviction attestations
	// built on it) must be backed by fsynced history.
	AckMode AckMode
	// GroupWindow is how long the WAL committer lingers to coalesce
	// concurrent appends into one fsync (0 = commit as soon as the committer
	// is free; pipelining alone already groups whatever accumulates during
	// the previous fsync).
	GroupWindow time.Duration
}

// DurableStats counts the durable path's work: the WAL's commit-pipeline
// counters plus the engine's catch-up seek counters. Aggregate with Merge.
type DurableStats struct {
	wal.Stats
	// FullScans counts unranged ForEachDurable streams (every part read).
	FullScans uint64
	// RangedReads counts ForEachDurableRange streams, SeekHits the subset
	// that skipped at least one part via the segment range index, and
	// PartsSkipped the total parts (segments/snapshots) never read.
	RangedReads  uint64
	SeekHits     uint64
	PartsSkipped uint64
}

// Merge folds o into s.
func (s *DurableStats) Merge(o DurableStats) {
	s.Stats.Merge(o.Stats)
	s.FullScans += o.FullScans
	s.RangedReads += o.RangedReads
	s.SeekHits += o.SeekHits
	s.PartsSkipped += o.PartsSkipped
}

// Durable is the crash-tolerant storage engine: a Mem engine fronting a
// segmented write-ahead log. Every Insert appends the version's wire
// encoding to the log before it becomes readable, and InsertBatch commits a
// whole replication batch with a single write+fsync (group commit). Snapshot
// checkpoints ride the garbage-collection exchange: after a GC pass prunes
// the chains, the engine serializes the surviving versions into a snapshot
// and truncates the log's segments.
//
// OpenDurable rebuilds the engine from disk — snapshot first, then the log
// tail, tolerating a torn final record — and reports the replayed
// version-vector floor via RecoveredVV, which the partition server uses to
// restore its VV after a crash.
//
// Write methods do not return errors (the Engine interface keeps the server
// hot path error-free); a failed append instead marks the engine sticky-
// failed: the in-memory state stays correct and serving, while Err and Close
// surface the first persistence error.
type Durable struct {
	mem        *Mem
	log        *wal.Log
	ackGrouped bool

	// Catch-up seek counters (see DurableStats).
	fullScans    atomic.Uint64
	rangedReads  atomic.Uint64
	seekHits     atomic.Uint64
	partsSkipped atomic.Uint64

	// mu serializes writers against checkpoints: Insert/InsertBatch hold it
	// shared (the WAL itself orders concurrent commits), Checkpoint and
	// Close hold it exclusively so the snapshot captures exactly the
	// appended state.
	mu sync.RWMutex

	checkpointBytes int64
	floor           vclock.VC // replayed VV floor, immutable after open
	werr            atomic.Pointer[error]

	// gcMu guards the compaction-floor bookkeeping: gcHigh accumulates the
	// entry-wise maximum of every GC vector CollectGarbage has applied, and
	// compacted snapshots gcHigh at each checkpoint — the proof boundary for
	// catch-up serving. A version with UpdateTime at or below compacted[its
	// origin] may have been pruned from the log by a checkpoint, so a catch-up
	// range starting below that floor cannot be served incrementally
	// (internal/repl answers with a full resync instead).
	gcMu      sync.Mutex
	gcHigh    vclock.VC
	compacted vclock.VC
	// attested is the entry-wise maximum of every durably committed VV
	// attestation (AttestVV); checkpoints re-emit it so log truncation
	// cannot lose the floor. Guarded by gcMu.
	attested vclock.VC
}

// OpenDurable opens (creating or recovering) a durable engine rooted at dir.
func OpenDurable(dir string, opts DurableOptions) (*Durable, error) {
	if opts.CheckpointBytes == 0 {
		opts.CheckpointBytes = defaultCheckpointBytes
	}
	mem := New()
	var floor, attested vclock.VC
	var d *Durable // late-bound: the WAL error hook fires only after open
	log, err := wal.Open(dir, wal.Options{
		SegmentBytes: opts.SegmentBytes,
		NoSync:       opts.NoSync,
		GroupWindow:  opts.GroupWindow,
		TagOf:        func(rec []byte) (int, uint64, bool) { return wire.VersionTag(rec) },
		Neutral:      isAttest,
		OnError: func(err error) {
			if d != nil {
				d.fail(err)
			}
		},
	},
		func(rec []byte) error {
			if isAttest(rec) {
				av, ok := parseAttest(rec)
				if !ok {
					return fmt.Errorf("corrupt vv attestation")
				}
				attested = attested.GrowTo(len(av))
				attested.MaxInPlace(av)
				return nil
			}
			v, _, err := wire.DecodeVersion(rec)
			if err != nil {
				return err
			}
			mem.Insert(v)
			for len(floor) <= v.SrcReplica {
				floor = append(floor, 0)
			}
			if v.UpdateTime > floor[v.SrcReplica] {
				floor[v.SrcReplica] = v.UpdateTime
			}
			return nil
		})
	if err != nil {
		return nil, fmt.Errorf("storage: open durable: %w", err)
	}
	// The recovered floor covers both halves of the durable state: the
	// per-origin maxima of the replayed versions and the last persisted
	// attestation (entries advanced by heartbeats or catch-up claims that
	// no stored version backs — see attest.go).
	floor = floor.GrowTo(len(attested))
	floor.MaxInPlace(attested)
	d = &Durable{
		mem:             mem,
		log:             log,
		ackGrouped:      opts.AckMode == AckGrouped,
		checkpointBytes: opts.CheckpointBytes,
		floor:           floor,
		attested:        attested,
	}
	return d, nil
}

// RecoveredVV returns the version-vector floor replayed at open: entry i is
// the highest update timestamp of any recovered version originating at DC i,
// raised to the last durable attestation (AttestVV).
func (d *Durable) RecoveredVV() vclock.VC { return d.floor.Clone() }

// Err returns the first persistence error, or nil. The in-memory state keeps
// serving after a failure, but durability is gone until the engine is
// reopened.
func (d *Durable) Err() error {
	if p := d.werr.Load(); p != nil {
		return *p
	}
	return nil
}

func (d *Durable) fail(err error) {
	if err != nil {
		d.werr.CompareAndSwap(nil, &err)
	}
}

// Insert logs the version, then installs it in memory. Under AckSync the
// version is durable before Insert returns; under AckGrouped it is staged on
// the commit pipeline and rides the next group's fsync — the local-PUT ack
// decoupling of the durability ladder (a later commit failure marks the
// engine sticky-failed rather than dropping the version silently).
//
// A version whose append fails is NOT installed: this node is the origin, so
// an exposed-but-never-logged local version would be observable (local reads,
// the replication flush) right up to the crash and then vanish from every
// replica's causal past — the one loss no catch-up can repair. Callers detect
// the dropped insert via Err and must not ack, advance the VV, or replicate.
func (d *Durable) Insert(v *item.Version) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var err error
	if d.ackGrouped {
		err = d.log.AppendAsync(wire.AppendVersion(nil, v))
	} else {
		err = d.log.Append(wire.AppendVersion(nil, v))
	}
	if err != nil {
		d.fail(err)
		return
	}
	d.mem.Insert(v)
}

// InsertBatch logs the whole batch as one commit — a single write and fsync
// on the replication-batch boundary — then installs it in one shard pass.
// Replicated batches always commit synchronously, regardless of AckMode: the
// caller advances version-vector entries (and answers eviction attestations)
// over this history, claims that must be backed by fsynced bytes.
//
// Unlike Insert, a failed append still installs the batch in memory: these
// versions are remote — their origin DC retains them durably, and a restart
// of this node rebuilds a lower VV from its log and refetches them through
// catch-up. Installing keeps reads consistent with the already-advancing VV
// during the failure window; skipping would manufacture read misses.
func (d *Durable) InsertBatch(vs []*item.Version) {
	if len(vs) == 0 {
		return
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	// Encode the whole batch into one arena and reslice it afterwards
	// (growth may move the buffer), keeping the allocation count constant
	// per batch instead of linear in its size.
	buf := make([]byte, 0, 48*len(vs))
	offs := make([]int, len(vs)+1)
	for i, v := range vs {
		buf = wire.AppendVersion(buf, v)
		offs[i+1] = len(buf)
	}
	recs := make([][]byte, len(vs))
	for i := range recs {
		recs[i] = buf[offs[i]:offs[i+1]]
	}
	d.fail(d.log.Append(recs...))
	d.mem.InsertBatch(vs)
}

// Head returns the chain head (the freshest version) for key, or nil.
func (d *Durable) Head(key string) *item.Version { return d.mem.Head(key) }

// ReadVisible returns the freshest version of key satisfying visible.
func (d *Durable) ReadVisible(key string, visible func(*item.Version) bool) ReadResult {
	return d.mem.ReadVisible(key, visible)
}

// ReadWithin returns the freshest version of key within the snapshot tv.
func (d *Durable) ReadWithin(key string, tv vclock.VC) ReadResult {
	return d.mem.ReadWithin(key, tv)
}

// CollectGarbage prunes the in-memory chains and, when the log has grown
// past the checkpoint threshold, writes a snapshot checkpoint of the pruned
// state and truncates the log — GC and log truncation advance together.
func (d *Durable) CollectGarbage(gv vclock.VC) int {
	d.gcMu.Lock()
	d.gcHigh = d.gcHigh.GrowTo(len(gv))
	d.gcHigh.MaxInPlace(gv)
	d.gcMu.Unlock()
	removed := d.mem.CollectGarbage(gv)
	if d.checkpointBytes > 0 && d.log.SinceCheckpoint() >= d.checkpointBytes {
		d.checkpoint()
	}
	return removed
}

// DropAbove removes src-originated versions above after from the in-memory
// chains. The log is left untouched (it may still hold them until the next
// checkpoint compacts the surviving state); callers re-apply the drop after
// recovery, seeded from the membership view's final timestamps.
func (d *Durable) DropAbove(src int, after vclock.Timestamp) int {
	return d.mem.DropAbove(src, after)
}

// CompactedFloor returns, per origin DC, the highest GC vector entry a
// snapshot checkpoint has compacted the log under. History at or below the
// floor survives only in pruned (snapshot) form: versions superseded at
// checkpoint time are gone, so an incremental catch-up range starting below
// the floor cannot be proven complete. Nil when no checkpoint has run.
func (d *Durable) CompactedFloor() vclock.VC {
	d.gcMu.Lock()
	defer d.gcMu.Unlock()
	return d.compacted.Clone()
}

// checkpoint streams the surviving versions into a snapshot while writers
// are held out, so the snapshot equals the log contents exactly. One encode
// scratch is reused for every record (the log frames each record into its
// own buffer before emit returns), keeping peak memory constant regardless
// of store size.
func (d *Durable) checkpoint() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.log.SinceCheckpoint() < d.checkpointBytes {
		return // another GC pass raced us here
	}
	// The GC passes folded into gcHigh all ran before this snapshot is cut,
	// so the snapshot's surviving state is exactly "pruned through gcHigh":
	// record it as the compaction floor before the log truncates.
	d.gcMu.Lock()
	floor := d.gcHigh.Clone()
	attested := d.attested.Clone() // stable: d.mu excludes AttestVV here
	d.gcMu.Unlock()
	var scratch []byte
	d.fail(d.log.Checkpoint(func(emit func(rec []byte)) {
		d.mem.ForEachVersion(func(v *item.Version) {
			scratch = wire.AppendVersion(scratch[:0], v)
			emit(scratch)
		})
		// The attestation floor must survive the truncation of the
		// segments that carried it: re-emit the aggregate.
		if len(attested) > 0 {
			emit(appendAttest(nil, attested))
		}
	}))
	d.gcMu.Lock()
	d.compacted = d.compacted.GrowTo(len(floor))
	d.compacted.MaxInPlace(floor)
	d.gcMu.Unlock()
}

// DurableFloor returns the WAL's snapshot floor — the segment sequence at
// and below which history exists only in compacted (snapshot) form.
// Observability today; the hook for segment-skipping catch-up reads later.
func (d *Durable) DurableFloor() uint64 { return d.log.SnapshotSeq() }

// ForEachDurable streams every durable version in committed order — the
// snapshot's compacted history first, then the log tail — decoding each
// record through the shared wire codec. It reads through a WAL cursor that
// pins its files open, so concurrent inserts and checkpoints proceed
// untouched; versions committed after the call starts are not included.
// This is the replication catch-up feed (internal/repl).
//
// A sticky persistence error fails the stream up front: once an append has
// failed, the log may be missing versions the in-memory state acknowledged,
// and a catch-up stream served from it would falsely claim completeness —
// the caller must fall back instead (repl answers Unsupported). The stream
// also waits on the WAL barrier first: with grouped acks, versions the local
// server acknowledged may still be in flight on the commit pipeline, and a
// completeness claim ("everything through t") must only cover fsynced bytes.
func (d *Durable) ForEachDurable(fn func(v *item.Version) error) error {
	if err := d.barrier(); err != nil {
		return err
	}
	d.fullScans.Add(1)
	return d.log.ReadFrom(0, func(_ uint64, rec []byte) error {
		if isAttest(rec) {
			return nil // local floor bookkeeping, not history to re-ship
		}
		v, _, err := wire.DecodeVersion(rec)
		if err != nil {
			return err
		}
		return fn(v)
	})
}

// ForEachDurableRange is ForEachDurable restricted to the per-origin window
// (lo[o], hi[o]] — entries past either vector's length are unbounded. It
// seeks through the WAL's segment range index, skipping the snapshot and any
// segment that cannot intersect the window, so catching up a small recent
// gap reads O(gap) bytes instead of the full compacted history. The window
// is advisory: versions outside it may still be streamed (per-part ranges
// are summaries), so callers keep their per-version filter.
func (d *Durable) ForEachDurableRange(lo, hi vclock.VC, fn func(v *item.Version) error) error {
	return d.ForEachDurableTail(lo, hi, func(v *item.Version, _ bool) error { return fn(v) })
}

// ForEachDurableTail is ForEachDurableRange plus a per-version provenance
// flag: tail is true when the record was read from the live log — where
// records sit in append order, so versions this node originated appear in
// ascending timestamp order — and false for the unordered snapshot (and,
// conservatively, for the first segment the walk touches when the snapshot
// boundary cannot be pinned exactly). Every snapshot version is streamed
// before any tail version, so once a tail version of some origin appears,
// all earlier history of that origin in the walk's window has already been
// delivered. This is what lets the catch-up server stamp sound mid-stream
// progress claims (repl.TailSource).
func (d *Durable) ForEachDurableTail(lo, hi vclock.VC, fn func(v *item.Version, tail bool) error) error {
	if err := d.barrier(); err != nil {
		return err
	}
	lo64 := make([]uint64, len(lo))
	for i, t := range lo {
		lo64[i] = uint64(t)
	}
	hi64 := make([]uint64, len(hi))
	for i, t := range hi {
		hi64[i] = uint64(t)
	}
	// Snapshot records are attributed to the snapshot's floor sequence and
	// live segments always number above it. The floor is sampled before the
	// read pins its cursor, so a checkpoint racing the sample could present
	// a newer snapshot under a higher sequence: folding in the first segment
	// the walk actually reports re-pins the boundary (a fresh snapshot is
	// the walk's first segment). The fold is conservative — at worst the
	// first live segment of a never-checkpointed store is flagged unordered
	// and progress claims start one segment later.
	boundary := d.log.SnapshotSeq()
	first := true
	skipped, err := d.log.ReadRange(lo64, hi64, func(seg uint64, rec []byte) error {
		if first {
			first = false
			if seg > boundary {
				boundary = seg
			}
		}
		if isAttest(rec) {
			return nil // local floor bookkeeping, not history to re-ship
		}
		v, _, err := wire.DecodeVersion(rec)
		if err != nil {
			return err
		}
		return fn(v, seg > boundary)
	})
	d.rangedReads.Add(1)
	if skipped > 0 {
		d.seekHits.Add(1)
		d.partsSkipped.Add(uint64(skipped))
	}
	return err
}

// barrier fails fast on a sticky persistence error and otherwise waits for
// the commit pipeline to drain — the sync boundary every durable-history
// claim is anchored to.
func (d *Durable) barrier() error {
	if err := d.Err(); err != nil {
		return err
	}
	if err := d.log.Barrier(); err != nil {
		d.fail(err)
		return err
	}
	return nil
}

// DurableStats returns the engine's durable-path counters: the WAL commit
// pipeline's and the catch-up seek counters.
func (d *Durable) DurableStats() DurableStats {
	return DurableStats{
		Stats:        d.log.Stats(),
		FullScans:    d.fullScans.Load(),
		RangedReads:  d.rangedReads.Load(),
		SeekHits:     d.seekHits.Load(),
		PartsSkipped: d.partsSkipped.Load(),
	}
}

// Stats counts keys and versions in a single pass.
func (d *Durable) Stats() StoreStats { return d.mem.Stats() }

// ForEachHead calls fn with every key's chain head.
func (d *Durable) ForEachHead(fn func(key string, head *item.Version)) { d.mem.ForEachHead(fn) }

// Close flushes and closes the log. It returns the first persistence error
// encountered over the engine's lifetime, if any.
func (d *Durable) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	cerr := d.log.Close()
	if err := d.Err(); err != nil {
		return err
	}
	return cerr
}
