package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/item"
	"repro/internal/vclock"
)

func durableVersion(key string, src int, ut vclock.Timestamp, deps vclock.VC) *item.Version {
	return &item.Version{
		Key: key, Value: []byte(fmt.Sprintf("%s@%d", key, ut)),
		SrcReplica: src, UpdateTime: ut, Deps: deps,
	}
}

func TestDurableRecoversChainsAndFloor(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d.Insert(durableVersion("a", 0, 10, vclock.VC{0, 0}))
	d.Insert(durableVersion("a", 1, 20, vclock.VC{10, 0}))
	d.InsertBatch([]*item.Version{
		durableVersion("b", 1, 30, vclock.VC{10, 20}),
		durableVersion("c", 0, 40, vclock.VC{0, 30}),
	})
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	st := r.Stats()
	if st.Keys != 3 || st.Versions != 4 {
		t.Fatalf("recovered stats = %+v, want 3 keys / 4 versions", st)
	}
	if h := r.Head("a"); h == nil || h.UpdateTime != 20 || h.SrcReplica != 1 {
		t.Fatalf("recovered head of a = %+v", h)
	}
	if h := r.Head("a"); string(h.Value) != "a@20" {
		t.Fatalf("recovered value = %q", h.Value)
	}
	// Chain order survives: ReadWithin an old snapshot finds the old version.
	res := r.ReadWithin("a", vclock.VC{5, 0})
	if res.V == nil || res.V.UpdateTime != 10 {
		t.Fatalf("ReadWithin old snapshot = %+v", res.V)
	}
	want := vclock.VC{40, 30}
	if got := r.RecoveredVV(); !got.Equal(want) {
		t.Fatalf("RecoveredVV = %v, want %v", got, want)
	}
}

func TestDurableFreshEngineHasNilFloor(t *testing.T) {
	d, err := OpenDurable(t.TempDir(), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if got := d.RecoveredVV(); got != nil {
		t.Fatalf("fresh engine floor = %v, want nil", got)
	}
}

func TestDurableTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 8; i++ {
		d.Insert(durableVersion("k", 0, vclock.Timestamp(i*10), vclock.VC{0}))
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the final record: chop bytes off the only segment's tail.
	var seg string
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".wal") {
			seg = filepath.Join(dir, e.Name())
		}
	}
	if seg == "" {
		t.Fatal("no segment on disk")
	}
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	defer r.Close()
	// The torn record (ut=80) is gone; everything before it survived.
	if st := r.Stats(); st.Versions != 7 {
		t.Fatalf("versions after torn-tail recovery = %d, want 7", st.Versions)
	}
	if h := r.Head("k"); h == nil || h.UpdateTime != 70 {
		t.Fatalf("head after torn-tail recovery = %+v", h)
	}
	// And the engine accepts new writes on the truncated log.
	r.Insert(durableVersion("k", 0, 90, vclock.VC{0}))
	if err := r.Err(); err != nil {
		t.Fatalf("insert after torn-tail recovery: %v", err)
	}
}

func TestDurableCheckpointOnGC(t *testing.T) {
	dir := t.TempDir()
	// A tiny checkpoint threshold so the first GC pass snapshots.
	d, err := OpenDurable(dir, DurableOptions{CheckpointBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 20; i++ {
		d.Insert(durableVersion("hot", 0, vclock.Timestamp(i), vclock.VC{vclock.Timestamp(i - 1)}))
	}
	// GC with a covering vector prunes down to the head, then checkpoints.
	if removed := d.CollectGarbage(vclock.VC{100}); removed != 19 {
		t.Fatalf("CollectGarbage removed %d, want 19", removed)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// The snapshot holds only the pruned state.
	var snaps, segs int
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		switch {
		case strings.HasSuffix(e.Name(), ".snap"):
			snaps++
		case strings.HasSuffix(e.Name(), ".wal"):
			segs++
		}
	}
	if snaps != 1 || segs != 1 {
		t.Fatalf("after checkpoint: %d snapshots, %d segments; want 1 and 1", snaps, segs)
	}

	r, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if st := r.Stats(); st.Keys != 1 || st.Versions != 1 {
		t.Fatalf("recovered stats after checkpoint = %+v, want 1/1", st)
	}
	if h := r.Head("hot"); h == nil || h.UpdateTime != 20 {
		t.Fatalf("recovered head = %+v", h)
	}
	if got := r.RecoveredVV(); !got.Equal(vclock.VC{20}) {
		t.Fatalf("RecoveredVV after checkpoint = %v", got)
	}
}

func TestDurableStickyErrorAfterClose(t *testing.T) {
	d, err := OpenDurable(t.TempDir(), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Writing to a closed engine records the persistence failure, and the
	// un-logged local version is NOT installed: this node is its origin, so
	// exposing it to reads and replication before it exists anywhere
	// durable would let it vanish from every replica's causal past on the
	// next crash — the one loss no catch-up can repair.
	d.Insert(durableVersion("x", 0, 1, vclock.VC{0}))
	if d.Err() == nil {
		t.Fatal("insert after Close left no sticky error")
	}
	if h := d.Head("x"); h != nil {
		t.Fatalf("un-logged local version was installed: %+v", h)
	}
}

func TestDurableIdempotentReplay(t *testing.T) {
	// The same version logged twice (replication retries) must not duplicate
	// on recovery — Mem.Insert's idempotence carries through the replay.
	dir := t.TempDir()
	d, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	v := durableVersion("dup", 1, 5, vclock.VC{0, 0})
	d.Insert(v)
	d.Insert(durableVersion("dup", 1, 5, vclock.VC{0, 0}))
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if st := r.Stats(); st.Versions != 1 {
		t.Fatalf("replayed %d versions for a duplicated record, want 1", st.Versions)
	}
}

// TestDurableForEachDurable: the catch-up feed streams every committed
// version in order — across a checkpoint (compacted history first, then the
// log tail) — and reports the snapshot floor, while the engine keeps
// serving writes.
func TestDurableForEachDurable(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, DurableOptions{CheckpointBytes: 1, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for i := 1; i <= 20; i++ {
		// Distinct keys: GC prunes superseded same-key versions, and the
		// snapshot only carries survivors.
		d.Insert(durableVersion(fmt.Sprintf("k%02d", i), 0, vclock.Timestamp(i*10), vclock.VC{0, 0}))
	}
	if d.DurableFloor() != 0 {
		t.Fatalf("floor = %d before any checkpoint", d.DurableFloor())
	}
	// GC nothing (gv below every dep) but trigger the armed checkpoint.
	d.CollectGarbage(vclock.VC{0, 0})
	if d.DurableFloor() == 0 {
		t.Fatal("checkpoint did not raise the durable floor")
	}
	d.Insert(durableVersion("k99", 0, 999, vclock.VC{0, 0}))

	var got []vclock.Timestamp
	if err := d.ForEachDurable(func(v *item.Version) error {
		got = append(got, v.UpdateTime)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// 20 pre-checkpoint versions (now snapshot records) + the post-one.
	if len(got) != 21 {
		t.Fatalf("streamed %d versions, want 21", len(got))
	}
	if got[len(got)-1] != 999 {
		t.Fatalf("tail version = %d, want the post-checkpoint 999", got[len(got)-1])
	}
	seen := make(map[vclock.Timestamp]bool, len(got))
	for _, ts := range got {
		seen[ts] = true
	}
	for i := 1; i <= 20; i++ {
		if !seen[vclock.Timestamp(i*10)] {
			t.Fatalf("version %d missing from the durable stream", i*10)
		}
	}
}

// TestDurableForEachDurableRefusesAfterStickyError: once an append has
// failed, the log may be missing acknowledged versions, and the catch-up
// feed must fail (the sender then answers Unsupported) rather than stream a
// history it cannot prove complete.
func TestDurableForEachDurableRefusesAfterStickyError(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, DurableOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	d.Insert(durableVersion("a", 0, 10, vclock.VC{0, 0}))
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Insert after Close: the append fails and the error sticks, while the
	// in-memory state still accepted the version.
	d.Insert(durableVersion("b", 0, 20, vclock.VC{0, 0}))
	if d.Err() == nil {
		t.Fatal("no sticky error after insert-on-closed; the scenario lost its teeth")
	}
	if err := d.ForEachDurable(func(*item.Version) error { return nil }); err == nil {
		t.Fatal("ForEachDurable streamed from an engine with a sticky persistence error")
	}
}
