package storage

import (
	"strconv"
	"testing"

	"repro/internal/item"
	"repro/internal/vclock"
)

func benchVersions(n int) []*item.Version {
	vs := make([]*item.Version, n)
	for i := range vs {
		vs[i] = &item.Version{
			Key:        "bench-k" + strconv.Itoa(i%64),
			Value:      []byte("00000000"),
			SrcReplica: 1,
			UpdateTime: vclock.Timestamp(i + 1),
			Deps:       vclock.VC{0, uint64ToTS(i), 0},
		}
	}
	return vs
}

func uint64ToTS(i int) vclock.Timestamp { return vclock.Timestamp(i) }

// BenchmarkStorageInsert measures the one-at-a-time insert path (one shard
// lock acquisition per version).
func BenchmarkStorageInsert(b *testing.B) {
	vs := benchVersions(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New()
		for _, v := range vs {
			s.Insert(v)
		}
	}
}

// BenchmarkStorageInsertBatch measures the batched apply path (one shard
// pass per batch) at the default replication batch size.
func BenchmarkStorageInsertBatch(b *testing.B) {
	vs := benchVersions(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New()
		for off := 0; off < len(vs); off += 128 {
			s.InsertBatch(vs[off : off+128])
		}
	}
}

// BenchmarkStorageStats measures the single-pass key/version sampler.
func BenchmarkStorageStats(b *testing.B) {
	s := New()
	for _, v := range benchVersions(1024) {
		s.Insert(v)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Stats()
	}
}

// BenchmarkDurableInsertBatch measures the durable engine's group-commit
// apply path: one WAL write+fsync per replication batch, then the in-memory
// batch insert. Compare against BenchmarkStorageInsertBatch for the price
// of durability; NoSync isolates the encoding+write cost from the fsync.
func BenchmarkDurableInsertBatch(b *testing.B) {
	for _, sync := range []bool{true, false} {
		name := "fsync"
		if !sync {
			name = "nosync"
		}
		b.Run(name, func(b *testing.B) {
			d, err := OpenDurable(b.TempDir(), DurableOptions{NoSync: !sync, CheckpointBytes: -1})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { d.Close() })
			vs := benchVersions(128)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.InsertBatch(vs)
			}
			if err := d.Err(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkCollectGarbageNoPrune measures a GC sweep over chains that need
// no pruning (the steady state between update bursts).
func BenchmarkCollectGarbageNoPrune(b *testing.B) {
	s := New()
	for _, v := range benchVersions(64) { // one version per key
		s.Insert(v)
	}
	gv := vclock.VC{1 << 40, 1 << 40, 1 << 40}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if removed := s.CollectGarbage(gv); removed != 0 {
			b.Fatalf("unexpected pruning: %d", removed)
		}
	}
}
