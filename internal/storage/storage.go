// Package storage implements the multiversion key-value stores backing each
// partition server, behind the pluggable Engine interface. Every key maps to
// a version chain ordered by the last-writer-wins total order (update
// timestamp descending, ties broken by lowest source replica). Reads select
// the freshest version that satisfies a caller-supplied visibility
// predicate: the optimistic (POCC) mode passes an always-true predicate and
// reads the chain head in O(1); the pessimistic (Cure*) mode passes a
// stability predicate and traverses the chain — the extra work the paper
// attributes to pessimistic designs.
//
// Two engines are provided: Mem, the sharded in-memory store (the default),
// and Durable, which fronts Mem with a write-ahead log for crash recovery
// (see durable.go). Both implement the paper's vector-based garbage
// collection: for each key they retain every version down to and including
// the first (i.e. newest) version whose dependency vector is covered by the
// GC vector.
package storage

import (
	"hash/maphash"
	"sync"

	"repro/internal/item"
	"repro/internal/vclock"
)

const numShards = 64

// Mem is the sharded multiversion key-value store. It is safe for concurrent
// use.
type Mem struct {
	seed   maphash.Seed
	shards [numShards]shard
}

type shard struct {
	mu     sync.RWMutex
	chains map[string][]*item.Version // newest first, LWW order
}

// New returns an empty in-memory engine.
func New() *Mem {
	s := &Mem{seed: maphash.MakeSeed()}
	for i := range s.shards {
		s.shards[i].chains = make(map[string][]*item.Version)
	}
	return s
}

func (s *Mem) shardIndex(key string) int {
	return int(maphash.String(s.seed, key) % numShards)
}

func (s *Mem) shardOf(key string) *shard {
	return &s.shards[s.shardIndex(key)]
}

// Insert adds a version to its key's chain, keeping the chain in LWW order.
// Inserting the same version twice is a no-op, making replication delivery
// idempotent.
func (s *Mem) Insert(v *item.Version) {
	sh := s.shardOf(v.Key)
	sh.mu.Lock()
	sh.insertLocked(v)
	sh.mu.Unlock()
}

// InsertBatch adds many versions, grouping them by shard so each shard lock
// is taken at most once per call — the apply path of batched replication.
// The batch slice is not mutated (it may be shared with other receivers);
// grouping uses an index chain, costing one small allocation per call.
func (s *Mem) InsertBatch(vs []*item.Version) {
	if len(vs) == 0 {
		return
	}
	if len(vs) == 1 {
		s.Insert(vs[0])
		return
	}
	// head[sh] is the first batch index in shard sh, next[i] the following
	// index in the same shard; building in reverse keeps original order.
	var head [numShards]int32
	for i := range head {
		head[i] = -1
	}
	next := make([]int32, len(vs))
	for i := len(vs) - 1; i >= 0; i-- {
		sh := s.shardIndex(vs[i].Key)
		next[i] = head[sh]
		head[sh] = int32(i)
	}
	for i := range head {
		j := head[i]
		if j < 0 {
			continue
		}
		sh := &s.shards[i]
		sh.mu.Lock()
		for ; j >= 0; j = next[j] {
			sh.insertLocked(vs[j])
		}
		sh.mu.Unlock()
	}
}

func (sh *shard) insertLocked(v *item.Version) {
	chain := sh.chains[v.Key]
	// Common case: the new version is the freshest (updates replicate in
	// timestamp order), so it lands at the head.
	i := 0
	for i < len(chain) {
		if v.Same(chain[i]) {
			return
		}
		if v.Newer(chain[i]) {
			break
		}
		i++
	}
	chain = append(chain, nil)
	copy(chain[i+1:], chain[i:])
	chain[i] = v
	sh.chains[v.Key] = chain
}

// ReadResult describes the outcome of a read.
type ReadResult struct {
	// V is the selected version, or nil if the key has no visible version.
	V *item.Version
	// Fresher is the number of versions in the chain that are LWW-newer than
	// the returned one ("# fresher versions" of Fig. 2b). Zero when V is the
	// chain head.
	Fresher int
	// Invisible is the number of versions in the chain that fail the
	// visibility predicate (the "unmerged" versions of Fig. 2b).
	Invisible int
	// ChainLen is the total number of versions in the chain.
	ChainLen int
}

// Head returns the chain head (the freshest version) for key, or nil.
func (s *Mem) Head(key string) *item.Version {
	sh := s.shardOf(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	chain := sh.chains[key]
	if len(chain) == 0 {
		return nil
	}
	return chain[0]
}

// ReadVisible returns the freshest version of key satisfying visible, along
// with chain statistics. A nil predicate means every version is visible, so
// the head is returned without traversing the chain (the POCC fast path).
func (s *Mem) ReadVisible(key string, visible func(*item.Version) bool) ReadResult {
	sh := s.shardOf(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	chain := sh.chains[key]
	res := ReadResult{ChainLen: len(chain)}
	if len(chain) == 0 {
		return res
	}
	if visible == nil {
		res.V = chain[0]
		return res
	}
	for i, v := range chain {
		if visible(v) {
			if res.V == nil {
				res.V = v
				res.Fresher = i
			}
		} else {
			res.Invisible++
		}
	}
	return res
}

// ReadWithin returns the freshest version of key whose dependency vector is
// entry-wise covered by tv (Algorithm 2, lines 43-44: the visible-version set
// of a transactional snapshot).
func (s *Mem) ReadWithin(key string, tv vclock.VC) ReadResult {
	return s.ReadVisible(key, func(v *item.Version) bool { return v.Deps.LessEq(tv) })
}

// CollectGarbage prunes every chain, retaining versions down to and including
// the first one whose dependency vector is covered by gv. If no version
// qualifies, the whole chain is kept (there is no safe version to anchor on).
// It returns the number of versions removed.
//
// Chains that need no pruning (single-version chains, or chains whose anchor
// is already the tail) are left untouched; pruned chains are truncated in
// place with the dropped tail nilled out so the versions are released
// without reallocating the chain slice.
func (s *Mem) CollectGarbage(gv vclock.VC) int {
	removed := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for key, chain := range sh.chains {
			if len(chain) < 2 {
				continue
			}
			anchor := -1
			for j, v := range chain {
				if v.Deps.LessEq(gv) {
					anchor = j
					break
				}
			}
			if anchor < 0 || anchor+1 >= len(chain) {
				continue
			}
			removed += len(chain) - anchor - 1
			for j := anchor + 1; j < len(chain); j++ {
				chain[j] = nil // release the pruned versions
			}
			sh.chains[key] = chain[:anchor+1]
		}
		sh.mu.Unlock()
	}
	return removed
}

// DropAbove removes every version originated by src with an update timestamp
// strictly greater than after, returning the number removed. Forced removal
// of a crashed data center uses it to discard the dead DC's un-agreed suffix:
// versions a survivor applied optimistically beyond the timestamp the
// survivors proved complete (their agreed final) would otherwise linger as
// unreplicatable divergence.
func (s *Mem) DropAbove(src int, after vclock.Timestamp) int {
	removed := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for key, chain := range sh.chains {
			kept := 0
			for _, v := range chain {
				if v.SrcReplica == src && v.UpdateTime > after {
					continue
				}
				chain[kept] = v
				kept++
			}
			if kept == len(chain) {
				continue
			}
			removed += len(chain) - kept
			for j := kept; j < len(chain); j++ {
				chain[j] = nil // release the dropped versions
			}
			if kept == 0 {
				delete(sh.chains, key)
			} else {
				sh.chains[key] = chain[:kept]
			}
		}
		sh.mu.Unlock()
	}
	return removed
}

// StoreStats summarizes the store's contents.
type StoreStats struct {
	// Keys is the number of keys with at least one version.
	Keys int
	// Versions is the total number of stored versions across all chains.
	Versions int
}

// Stats counts keys and versions in a single pass, taking every shard lock
// exactly once. Metrics samplers should prefer it over separate Keys and
// Versions calls.
func (s *Mem) Stats() StoreStats {
	var st StoreStats
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		st.Keys += len(sh.chains)
		for _, chain := range sh.chains {
			st.Versions += len(chain)
		}
		sh.mu.RUnlock()
	}
	return st
}

// Keys returns the number of keys with at least one version.
func (s *Mem) Keys() int { return s.Stats().Keys }

// Versions returns the total number of stored versions across all chains.
func (s *Mem) Versions() int { return s.Stats().Versions }

// ForEachHead calls fn with every key's chain head. Used by convergence
// checks in tests; fn must not call back into the store.
func (s *Mem) ForEachHead(fn func(key string, head *item.Version)) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for key, chain := range sh.chains {
			if len(chain) > 0 {
				fn(key, chain[0])
			}
		}
		sh.mu.RUnlock()
	}
}

// ForEachVersion calls fn with every stored version, chain by chain in LWW
// order. The durable engine's snapshot checkpoints use it to serialize the
// full store; fn must not call back into the store.
func (s *Mem) ForEachVersion(fn func(v *item.Version)) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, chain := range sh.chains {
			for _, v := range chain {
				fn(v)
			}
		}
		sh.mu.RUnlock()
	}
}

// Close releases the engine. For the in-memory engine it is a no-op.
func (s *Mem) Close() error { return nil }
