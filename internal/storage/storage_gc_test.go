package storage

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/item"
	"repro/internal/vclock"
)

// TestGCUnderConcurrentTraffic: garbage collection running concurrently
// with inserts and reads must never lose the LWW head nor corrupt chain
// order.
func TestGCUnderConcurrentTraffic(t *testing.T) {
	s := New()
	const writers = 4
	const perWriter = 400
	var wg sync.WaitGroup
	var gcWG sync.WaitGroup
	stop := make(chan struct{})

	// GC runs continuously with a sliding vector (throttled: every call
	// locks all shards, and an unthrottled loop starves writers under the
	// race detector).
	gcWG.Add(1)
	go func() {
		defer gcWG.Done()
		gv := vclock.VC{0, 0}
		ticker := time.NewTicker(500 * time.Microsecond)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
			}
			gv[0] += 50
			gv[1] += 50
			s.CollectGarbage(gv.Clone())
		}
	}()

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 1; i <= perWriter; i++ {
				ut := vclock.Timestamp(w*perWriter + i)
				s.Insert(&item.Version{
					Key: fmt.Sprintf("k%d", i%7), Value: []byte{byte(i)},
					SrcReplica: w % 2, UpdateTime: ut,
					Deps: vclock.VC{ut - 1, 0},
				})
				res := s.ReadVisible(fmt.Sprintf("k%d", i%7), nil)
				if res.V == nil {
					t.Errorf("read lost the head entirely")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	gcWG.Wait()

	// After traffic, every chain must still be in strict LWW order (the
	// predicate sees versions in chain order, newest first).
	for k := 0; k < 7; k++ {
		key := fmt.Sprintf("k%d", k)
		var prev *item.Version
		bad := false
		s.ReadVisible(key, func(v *item.Version) bool {
			if prev != nil && !prev.Newer(v) {
				bad = true
			}
			prev = v
			return false // traverse the whole chain
		})
		if bad {
			t.Fatalf("chain %s out of LWW order", key)
		}
	}
}

// TestQuickGCIdempotent: collecting twice with the same vector removes
// nothing the second time.
func TestQuickGCIdempotent(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 9))
		s := New()
		for i := 0; i < 30; i++ {
			s.Insert(&item.Version{
				Key:        fmt.Sprintf("k%d", rng.Uint64N(4)),
				UpdateTime: vclock.Timestamp(1 + rng.Uint64N(100)),
				SrcReplica: int(rng.Uint64N(3)),
				Deps:       vclock.VC{vclock.Timestamp(rng.Uint64N(50)), vclock.Timestamp(rng.Uint64N(50))},
			})
		}
		gv := vclock.VC{vclock.Timestamp(rng.Uint64N(60)), vclock.Timestamp(rng.Uint64N(60))}
		s.CollectGarbage(gv)
		return s.CollectGarbage(gv) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickGCMonotone: a larger GC vector never retains more versions than
// a smaller one.
func TestQuickGCMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 13))
		build := func() *Mem {
			r2 := rand.New(rand.NewPCG(seed, 99))
			s := New()
			for i := 0; i < 25; i++ {
				s.Insert(&item.Version{
					Key:        fmt.Sprintf("k%d", r2.Uint64N(3)),
					UpdateTime: vclock.Timestamp(1 + r2.Uint64N(100)),
					SrcReplica: int(r2.Uint64N(2)),
					Deps:       vclock.VC{vclock.Timestamp(r2.Uint64N(50)), vclock.Timestamp(r2.Uint64N(50))},
				})
			}
			return s
		}
		small := vclock.VC{vclock.Timestamp(rng.Uint64N(30)), vclock.Timestamp(rng.Uint64N(30))}
		big := vclock.Max(small, vclock.VC{vclock.Timestamp(rng.Uint64N(60)), vclock.Timestamp(rng.Uint64N(60))})

		s1 := build()
		s1.CollectGarbage(small)
		s2 := build()
		s2.CollectGarbage(big)
		return s2.Versions() <= s1.Versions()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
