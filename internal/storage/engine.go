package storage

import (
	"repro/internal/item"
	"repro/internal/vclock"
)

// Engine is the pluggable storage backend of a partition server. Two
// implementations ship with the repository:
//
//   - Mem (the default): the sharded multiversion in-memory store — fastest,
//     but a killed server loses its partition.
//   - Durable: Mem fronting a segmented write-ahead log (internal/wal) with
//     snapshot checkpoints, so a crashed server recovers its version chains
//     (and version-vector floor) from disk via OpenDurable.
//
// All methods must be safe for concurrent use. Read methods (Head,
// ReadVisible, ReadWithin, Stats, ForEachHead) sit on the protocol hot path
// and must not block behind writers longer than a shard lock.
type Engine interface {
	// Insert adds one version to its key's chain (idempotently).
	Insert(v *item.Version)
	// InsertBatch adds many versions in one pass — the apply side of batched
	// replication and, for durable engines, the group-commit boundary.
	InsertBatch(vs []*item.Version)
	// Head returns the freshest version of key, or nil.
	Head(key string) *item.Version
	// ReadVisible returns the freshest version satisfying visible (nil means
	// every version is visible: the POCC O(1) fast path).
	ReadVisible(key string, visible func(*item.Version) bool) ReadResult
	// ReadWithin returns the freshest version whose dependency vector is
	// covered by tv (transactional snapshot reads).
	ReadWithin(key string, tv vclock.VC) ReadResult
	// CollectGarbage prunes version chains against the GC vector and returns
	// the number of versions removed. Durable engines piggyback snapshot
	// checkpoints and segment truncation on this call.
	CollectGarbage(gv vclock.VC) int
	// DropAbove removes every version originated by src with an update time
	// strictly greater than after — the forced-removal path discarding a
	// crashed DC's un-agreed suffix. Returns the number removed.
	DropAbove(src int, after vclock.Timestamp) int
	// Stats counts keys and versions in a single pass (snapshot-consistent
	// per shard).
	Stats() StoreStats
	// ForEachHead calls fn with every key's chain head; fn must not call
	// back into the engine.
	ForEachHead(fn func(key string, head *item.Version))
	// Close releases the engine's resources (flushing and closing any
	// stable-storage files). The engine must not be used afterwards.
	Close() error
}

// Recovered is implemented by engines that rebuild state from stable
// storage. The partition server uses it to restore its version-vector floor
// after a crash.
type Recovered interface {
	// RecoveredVV is the version-vector floor replayed at open: entry i is
	// the highest update timestamp of any recovered version originating at
	// DC i. Nil when the engine started empty.
	RecoveredVV() vclock.VC
}

// CatchUpSource is implemented by engines that can replay their durable
// history, the feed of the replication catch-up protocol (internal/repl): a
// lagging replica that lost part of the update stream asks its sibling to
// re-ship versions, and the sibling streams them straight out of this
// interface instead of keeping unbounded in-memory replication buffers. The
// in-memory engine does not implement it — a crashed in-memory server has
// nothing to re-ship. (Durable additionally exposes DurableFloor, the WAL's
// snapshot-floor segment sequence, as observability and the future hook for
// segment-skipping reads.)
type CatchUpSource interface {
	// ForEachDurable streams every durable version — snapshot first, then
	// the log tail — in committed order. The version values are freshly
	// decoded and owned by the callee; returning an error stops the stream
	// and is reported back. It must fail (rather than stream a partial
	// history) when the engine cannot prove the log is complete, e.g. after
	// a sticky persistence error.
	ForEachDurable(fn func(v *item.Version) error) error
}

// RangedCatchUpSource is implemented by catch-up sources that can seek:
// ForEachDurableRange streams only the durable history that may fall inside
// a per-origin (lo, hi] timestamp window, using an index to skip cold
// storage parts entirely. The window is advisory — versions outside it may
// still be streamed — so consumers keep their per-version filter; the win is
// that a small recent gap no longer pays an O(store) scan.
type RangedCatchUpSource interface {
	CatchUpSource
	ForEachDurableRange(lo, hi vclock.VC, fn func(v *item.Version) error) error
}

// TailCatchUpSource is implemented by catch-up sources whose ranged walk can
// additionally flag, per version, whether the record came from the
// append-ordered live log (tail — versions of one origin arrive in ascending
// timestamp order, after all of that origin's snapshot history) or from the
// unordered snapshot. Consumers that make mid-stream completeness claims
// (resumable catch-up in internal/repl) may only advance a claim on tail
// versions.
type TailCatchUpSource interface {
	RangedCatchUpSource
	ForEachDurableTail(lo, hi vclock.VC, fn func(v *item.Version, tail bool) error) error
}

var (
	_ Engine              = (*Mem)(nil)
	_ Engine              = (*Durable)(nil)
	_ Recovered           = (*Durable)(nil)
	_ CatchUpSource       = (*Durable)(nil)
	_ RangedCatchUpSource = (*Durable)(nil)
	_ TailCatchUpSource   = (*Durable)(nil)
)
