package storage

import (
	"encoding/binary"

	"repro/internal/vclock"
)

// Version-vector attestation records.
//
// Most VV advances are backed by version records: replay rebuilds them. But
// heartbeat attestations and catch-up completion claims raise entries past
// the last version this partition stored — a DC that writes nothing to this
// partition's keyspace advances here without leaving a single record. A
// crash forgets those advances, and that is not merely a liveness hiccup:
// the server's GC contributions promised the DC a floor ("any snapshot I
// hand out covers at least this"), siblings pruned their chains to the
// aggregate of those promises, and a restart that comes back below its own
// promise coordinates transactions whose snapshot vector sits under the
// prune point. Slices then find chains whose every surviving version
// carries dependencies above the snapshot — a permanently broken causal
// cut, observed as RO-TX holes until catch-up re-raises the VV.
//
// The repair is an invariant between GC and recovery: a contribution is
// only shared after the vector is durable, so the VV any restart rebuilds
// covers every contribution this node ever made — and therefore every GC
// vector derived from them. AttestVV is the durability half; OpenDurable
// folds replayed attestations back into the recovered floor, and
// checkpoints re-emit the latest attestation so compaction cannot lose it.

// attestMarker prefixes a VV-attestation record in the log. It is outside
// the wire codec's version-record marker space (0 = nil, 1 = version) and
// distinct from the WAL's index-trailer magic (0xF7…), so the record kinds
// sharing the log never collide.
const attestMarker = 0x02

func appendAttest(b []byte, vv vclock.VC) []byte {
	b = append(b, attestMarker)
	b = binary.AppendUvarint(b, uint64(len(vv)))
	for _, t := range vv {
		b = binary.AppendUvarint(b, uint64(t))
	}
	return b
}

// isAttest reports whether rec is a VV-attestation record.
func isAttest(rec []byte) bool { return len(rec) > 0 && rec[0] == attestMarker }

// parseAttest decodes an attestation record. ok=false means rec carries the
// attestation marker but is malformed — committed frames are CRC-checked,
// so that is real corruption, not a torn tail.
func parseAttest(rec []byte) (vclock.VC, bool) {
	b := rec[1:]
	n, un := binary.Uvarint(b)
	if un <= 0 || n > 1<<16 {
		return nil, false
	}
	b = b[un:]
	vv := make(vclock.VC, 0, n)
	for i := uint64(0); i < n; i++ {
		t, un := binary.Uvarint(b)
		if un <= 0 {
			return nil, false
		}
		b = b[un:]
		vv = append(vv, vclock.Timestamp(t))
	}
	return vv, true
}

// Attester is implemented by engines that persist version-vector
// attestations: AttestVV returns only once the floor claim is durable, and
// the engine's recovered VV after any later crash covers it. The partition
// server attests each GC contribution before sharing it (see
// core.Server.localGCContribution).
type Attester interface {
	AttestVV(vv vclock.VC) vclock.VC
}

// AttestVV persists vv as a version-vector floor: once it returns, a
// crash-recovered engine reports a RecoveredVV covering vv even where no
// stored version backs an entry. It returns the vector now durably
// attested — vv itself on success, the entry-wise minimum of vv and the
// previous attestation when the append fails (sticky error) — which is the
// safe value to expose in a GC contribution.
//
// Entries already covered by an earlier attestation cost nothing; an
// advance is one small record on the group-commit pipeline, committed
// synchronously so the caller's floor claim is backed by fsynced bytes.
func (d *Durable) AttestVV(vv vclock.VC) vclock.VC {
	d.mu.RLock()
	defer d.mu.RUnlock()
	d.gcMu.Lock()
	if vv.LessEq(d.attested) {
		d.gcMu.Unlock()
		return vv
	}
	prev := d.attested.Clone()
	d.gcMu.Unlock()
	// Append outside gcMu: the commit wait is a group-commit latency, and
	// GC bookkeeping must not stall behind it. d.mu (held shared) already
	// excludes the checkpoint writer, so the record cannot slip past a
	// concurrent log truncation.
	if err := d.log.Append(appendAttest(nil, vv)); err != nil {
		d.fail(err)
		safe := vv.Clone().GrowTo(len(prev))
		safe.MinInPlace(prev)
		return safe
	}
	d.gcMu.Lock()
	d.attested = d.attested.GrowTo(len(vv))
	d.attested.MaxInPlace(vv)
	d.gcMu.Unlock()
	return vv
}
