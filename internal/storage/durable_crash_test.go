package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/item"
	"repro/internal/vclock"
)

// walSegments returns the on-disk .wal segment paths sorted by name
// (sequence order).
func walSegments(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".wal") {
			segs = append(segs, filepath.Join(dir, e.Name()))
		}
	}
	return segs
}

// TestDurableGroupedAckCrashLosesOnlySuffix: a machine crash mid-group may
// tear the tail of a coalesced write, but recovery must come back with a
// consistent prefix — the version-vector floor reflects exactly the versions
// replayed, never one that was torn away.
func TestDurableGroupedAckCrashLosesOnlySuffix(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, DurableOptions{
		AckMode:     AckGrouped,
		GroupWindow: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Concurrent grouped inserts so the committer coalesces multi-record
	// groups (single-record groups would make this the plain torn-tail test).
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				ut := vclock.Timestamp(w*100 + i + 1)
				d.Insert(durableVersion(fmt.Sprintf("g%d-%d", w, i), 0, ut, vclock.VC{0}))
			}
		}(w)
	}
	wg.Wait()
	if err := d.Close(); err != nil { // drains: everything staged is now on disk
		t.Fatal(err)
	}
	if s := d.DurableStats(); s.GroupMax < 2 {
		t.Skipf("no multi-record group formed (GroupMax=%d); nothing mid-group to tear", s.GroupMax)
	}

	// "Crash": chop a chunk off the last segment, landing mid-frame inside
	// what was a coalesced group write.
	segs := walSegments(t, dir)
	seg := segs[len(segs)-1]
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 64 {
		t.Fatalf("segment unexpectedly small: %d bytes", len(data))
	}
	if err := os.WriteFile(seg, data[:len(data)-37], 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatalf("open after mid-group crash: %v", err)
	}
	defer r.Close()
	st := r.Stats()
	if st.Versions == 0 || st.Versions >= 64 {
		t.Fatalf("recovered %d versions, want a strict non-empty prefix of 64", st.Versions)
	}
	// The floor must be derivable from the recovered versions alone: every
	// key here holds one version, so the heads are the full recovered set,
	// and no recovered version may exceed the claimed floor.
	floor := r.RecoveredVV()
	if floor == nil {
		t.Fatal("no floor recovered despite surviving versions")
	}
	var worst vclock.Timestamp
	r.ForEachHead(func(_ string, head *item.Version) {
		if head.UpdateTime > worst {
			worst = head.UpdateTime
		}
	})
	if floor[0] != worst {
		t.Fatalf("RecoveredVV = %v but worst recovered version is %d: floor claims a torn version", floor, worst)
	}
	// And the recovered engine keeps accepting writes on the truncated log.
	r.Insert(durableVersion("after", 0, 10_000, vclock.VC{0}))
	if err := r.Err(); err != nil {
		t.Fatalf("insert after crash recovery: %v", err)
	}
}

// TestDurableCatchUpWaitsForGroupedAcks: a version acknowledged under
// AckGrouped is not yet fsynced — the catch-up feed must not stream a
// "complete" history that omits it. ForEachDurable barriers on the commit
// pipeline, so the stream either includes the version or the call fails;
// it never silently claims completeness early.
func TestDurableCatchUpWaitsForGroupedAcks(t *testing.T) {
	d, err := OpenDurable(t.TempDir(), DurableOptions{
		AckMode: AckGrouped,
		// A long linger: without the barrier the stream would race a commit
		// that is deliberately parked for 200ms.
		GroupWindow: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	start := time.Now()
	d.Insert(durableVersion("parked", 0, 42, vclock.VC{0}))
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}

	var got int
	if err := d.ForEachDurable(func(v *item.Version) error {
		got++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("durable stream saw %d versions, want the grouped-acked one", got)
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Fatalf("stream returned after %v — it cannot have waited out the %v commit linger", elapsed, 200*time.Millisecond)
	}
}

// TestDurableForEachDurableRangeSkipsColdParts: a ranged catch-up of a small
// recent gap reads only the parts whose index ranges overlap the window —
// the seek-hit and parts-skipped counters prove cold segments stayed cold.
func TestDurableForEachDurableRangeSkipsColdParts(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, DurableOptions{SegmentBytes: 512, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	const n = 200
	for i := 1; i <= n; i++ {
		d.Insert(durableVersion(fmt.Sprintf("k%03d", i), 0, vclock.Timestamp(i), vclock.VC{0}))
	}
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	if len(walSegments(t, dir)) < 3 {
		t.Fatal("writes did not roll enough segments for a meaningful skip test")
	}

	// A small recent gap: everything after n-10.
	lo := vclock.VC{vclock.Timestamp(n - 10)}
	hi := vclock.VC{vclock.Timestamp(n)}
	seen := make(map[vclock.Timestamp]bool)
	if err := d.ForEachDurableRange(lo, hi, func(v *item.Version) error {
		seen[v.UpdateTime] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for ts := vclock.Timestamp(n - 9); ts <= n; ts++ {
		if !seen[ts] {
			t.Fatalf("ranged stream missed version %d inside the window", ts)
		}
	}
	st := d.DurableStats()
	if st.RangedReads != 1 {
		t.Fatalf("RangedReads = %d, want 1", st.RangedReads)
	}
	if st.SeekHits != 1 || st.PartsSkipped == 0 {
		t.Fatalf("seek did not skip cold segments: hits=%d skipped=%d", st.SeekHits, st.PartsSkipped)
	}
	if st.FullScans != 0 {
		t.Fatalf("ranged read counted as a full scan: %d", st.FullScans)
	}
}
