package storage

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/item"
	"repro/internal/vclock"
)

func v(key string, ut vclock.Timestamp, sr int, deps ...vclock.Timestamp) *item.Version {
	return &item.Version{Key: key, UpdateTime: ut, SrcReplica: sr, Deps: vclock.VC(deps)}
}

func TestInsertAndHead(t *testing.T) {
	s := New()
	if s.Head("x") != nil {
		t.Fatal("empty store must have no head")
	}
	s.Insert(v("x", 5, 0))
	s.Insert(v("x", 3, 1))
	s.Insert(v("x", 9, 2))
	head := s.Head("x")
	if head == nil || head.UpdateTime != 9 {
		t.Fatalf("head = %+v, want ut=9", head)
	}
}

func TestInsertOutOfOrderKeepsLWWOrder(t *testing.T) {
	s := New()
	times := []vclock.Timestamp{7, 2, 9, 4, 1, 8}
	for _, ut := range times {
		s.Insert(v("k", ut, 0))
	}
	res := s.ReadVisible("k", func(*item.Version) bool { return true })
	if res.ChainLen != len(times) {
		t.Fatalf("ChainLen = %d", res.ChainLen)
	}
	if res.V.UpdateTime != 9 {
		t.Fatalf("freshest = %d", res.V.UpdateTime)
	}
}

func TestInsertTieBreak(t *testing.T) {
	s := New()
	s.Insert(v("k", 5, 2))
	s.Insert(v("k", 5, 0)) // same ut, lower replica: LWW winner
	if head := s.Head("k"); head.SrcReplica != 0 {
		t.Fatalf("head replica = %d, want 0", head.SrcReplica)
	}
}

func TestInsertIdempotent(t *testing.T) {
	s := New()
	a := v("k", 5, 1)
	s.Insert(a)
	s.Insert(v("k", 5, 1)) // same version replayed
	if got := s.Versions(); got != 1 {
		t.Fatalf("Versions = %d after duplicate insert", got)
	}
}

func TestReadVisibleNilPredicateIsHead(t *testing.T) {
	s := New()
	s.Insert(v("k", 5, 0))
	s.Insert(v("k", 7, 1))
	res := s.ReadVisible("k", nil)
	if res.V.UpdateTime != 7 || res.Fresher != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestReadVisiblePredicate(t *testing.T) {
	s := New()
	s.Insert(v("k", 3, 0))
	s.Insert(v("k", 5, 1))
	s.Insert(v("k", 9, 2))
	// Only versions with ut <= 5 are "stable".
	res := s.ReadVisible("k", func(ver *item.Version) bool { return ver.UpdateTime <= 5 })
	if res.V.UpdateTime != 5 {
		t.Fatalf("returned ut = %d, want 5", res.V.UpdateTime)
	}
	if res.Fresher != 1 {
		t.Fatalf("Fresher = %d, want 1 (ut=9 hidden)", res.Fresher)
	}
	if res.Invisible != 1 {
		t.Fatalf("Invisible = %d, want 1", res.Invisible)
	}
	if res.ChainLen != 3 {
		t.Fatalf("ChainLen = %d", res.ChainLen)
	}
}

func TestReadVisibleNothingVisible(t *testing.T) {
	s := New()
	s.Insert(v("k", 9, 2))
	res := s.ReadVisible("k", func(*item.Version) bool { return false })
	if res.V != nil || res.Invisible != 1 {
		t.Fatalf("res = %+v", res)
	}
}

func TestReadWithin(t *testing.T) {
	s := New()
	s.Insert(v("k", 5, 0, 0, 0))   // deps [0 0]
	s.Insert(v("k", 9, 1, 8, 0))   // deps [8 0]
	s.Insert(v("k", 12, 0, 8, 11)) // deps [8 11]
	tv := vclock.VC{8, 5}
	res := s.ReadWithin("k", tv)
	if res.V.UpdateTime != 9 {
		t.Fatalf("ReadWithin returned ut=%d, want 9", res.V.UpdateTime)
	}
}

// TestReadWithinAllowsFresherThanSnapshot checks the OCC optimism: a version
// with update time beyond the snapshot is still visible as long as its
// dependencies are covered (Algorithm 2, line 43 checks DV only).
func TestReadWithinAllowsFresherThanSnapshot(t *testing.T) {
	s := New()
	s.Insert(v("k", 100, 1, 2, 0)) // very fresh but depends only on [2 0]
	res := s.ReadWithin("k", vclock.VC{5, 5})
	if res.V == nil || res.V.UpdateTime != 100 {
		t.Fatalf("version with covered deps must be visible, got %+v", res)
	}
}

func TestMissingKey(t *testing.T) {
	s := New()
	res := s.ReadVisible("nope", nil)
	if res.V != nil || res.ChainLen != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestCollectGarbage(t *testing.T) {
	s := New()
	s.Insert(v("k", 2, 0, 0, 0))
	s.Insert(v("k", 5, 0, 3, 0))
	s.Insert(v("k", 9, 0, 7, 7))
	// GV covers deps of the ut=5 version but not the ut=9 one.
	removed := s.CollectGarbage(vclock.VC{4, 4})
	if removed != 1 {
		t.Fatalf("removed = %d, want 1 (only ut=2 pruned)", removed)
	}
	res := s.ReadVisible("k", func(*item.Version) bool { return true })
	if res.ChainLen != 2 {
		t.Fatalf("ChainLen = %d after GC", res.ChainLen)
	}
	// The anchor version (ut=5) must survive: it is the oldest version a
	// transaction with snapshot >= GV may still need.
	found := false
	s.ForEachHead(func(string, *item.Version) {})
	if got := s.ReadWithin("k", vclock.VC{4, 4}); got.V != nil && got.V.UpdateTime == 5 {
		found = true
	}
	if !found {
		t.Fatal("GC must keep the newest version with deps <= GV")
	}
}

func TestCollectGarbageNoAnchorKeepsAll(t *testing.T) {
	s := New()
	s.Insert(v("k", 5, 0, 9, 9))
	s.Insert(v("k", 8, 0, 9, 9))
	if removed := s.CollectGarbage(vclock.VC{0, 0}); removed != 0 {
		t.Fatalf("removed = %d, want 0 when nothing is anchored", removed)
	}
}

func TestCollectGarbageHeadAnchored(t *testing.T) {
	s := New()
	s.Insert(v("k", 2, 0, 0, 0))
	s.Insert(v("k", 5, 0, 1, 1))
	removed := s.CollectGarbage(vclock.VC{10, 10})
	if removed != 1 {
		t.Fatalf("removed = %d, want 1", removed)
	}
	if s.Head("k").UpdateTime != 5 {
		t.Fatal("head must survive GC")
	}
}

func TestKeysAndVersions(t *testing.T) {
	s := New()
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("k%d", i%3)
		s.Insert(v(key, vclock.Timestamp(i+1), i%2))
	}
	if s.Keys() != 3 {
		t.Fatalf("Keys = %d", s.Keys())
	}
	if s.Versions() != 10 {
		t.Fatalf("Versions = %d", s.Versions())
	}
}

func TestForEachHead(t *testing.T) {
	s := New()
	s.Insert(v("a", 1, 0))
	s.Insert(v("a", 5, 0))
	s.Insert(v("b", 3, 1))
	heads := map[string]vclock.Timestamp{}
	s.ForEachHead(func(k string, h *item.Version) { heads[k] = h.UpdateTime })
	if heads["a"] != 5 || heads["b"] != 3 {
		t.Fatalf("heads = %v", heads)
	}
}

func TestConcurrentInsertAndRead(t *testing.T) {
	s := New()
	const writers = 8
	const perWriter = 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("k%d", i%17)
				s.Insert(v(key, vclock.Timestamp(w*perWriter+i+1), w%3))
				_ = s.ReadVisible(key, nil)
			}
		}(w)
	}
	wg.Wait()
	if got := s.Versions(); got != writers*perWriter {
		t.Fatalf("Versions = %d, want %d", got, writers*perWriter)
	}
}

// TestQuickChainOrderInvariant inserts versions in random order and checks
// the chain is always read back in strict LWW order with the correct head.
func TestQuickChainOrderInvariant(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		s := New()
		n := 1 + int(rng.Uint64N(40))
		type vk struct {
			ut vclock.Timestamp
			sr int
		}
		inserted := map[vk]bool{}
		var best *item.Version
		for i := 0; i < n; i++ {
			ver := v("k", vclock.Timestamp(1+rng.Uint64N(50)), int(rng.Uint64N(3)))
			s.Insert(ver)
			k := vk{ver.UpdateTime, ver.SrcReplica}
			if !inserted[k] {
				inserted[k] = true
				if best == nil || ver.Newer(best) {
					best = ver
				}
			}
		}
		res := s.ReadVisible("k", func(*item.Version) bool { return true })
		if res.ChainLen != len(inserted) {
			return false
		}
		head := s.Head("k")
		return head.UpdateTime == best.UpdateTime && head.SrcReplica == best.SrcReplica
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickGCRetentionInvariant: after GC with any vector, (1) the head
// survives, (2) there is still a version with deps <= GV whenever one existed
// before, and (3) no version newer than the anchor was removed.
func TestQuickGCRetentionInvariant(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 5))
		s := New()
		n := 1 + int(rng.Uint64N(20))
		hadAnchored := false
		gv := vclock.VC{vclock.Timestamp(rng.Uint64N(30)), vclock.Timestamp(rng.Uint64N(30))}
		var headBefore *item.Version
		seen := map[vclock.Timestamp]bool{} // dedup: same (ut, sr=0) is dropped by Insert
		for i := 0; i < n; i++ {
			ver := v("k", vclock.Timestamp(1+rng.Uint64N(60)), 0,
				vclock.Timestamp(rng.Uint64N(30)), vclock.Timestamp(rng.Uint64N(30)))
			s.Insert(ver)
			if seen[ver.UpdateTime] {
				continue
			}
			seen[ver.UpdateTime] = true
			if ver.Deps.LessEq(gv) {
				hadAnchored = true
			}
			if headBefore == nil || ver.Newer(headBefore) {
				headBefore = ver
			}
		}
		s.CollectGarbage(gv)
		head := s.Head("k")
		if head == nil || !head.Same(headBefore) {
			return false
		}
		if hadAnchored {
			if res := s.ReadWithin("k", gv); res.V == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
