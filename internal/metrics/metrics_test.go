package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestBlockingBasics(t *testing.T) {
	var b Blocking
	b.Record(0)
	b.Record(0)
	b.Record(10 * time.Millisecond)
	b.Record(30 * time.Millisecond)
	s := b.Snapshot()
	if s.Ops != 4 || s.Blocked != 2 {
		t.Fatalf("snapshot = %+v", s)
	}
	if got := s.Probability(); got != 0.5 {
		t.Fatalf("Probability = %v", got)
	}
	if got := s.MeanBlockTime(); got != 20*time.Millisecond {
		t.Fatalf("MeanBlockTime = %v", got)
	}
}

func TestBlockingEmpty(t *testing.T) {
	var s BlockingSnapshot
	if s.Probability() != 0 || s.MeanBlockTime() != 0 {
		t.Fatal("empty snapshot must be all zeros")
	}
}

func TestBlockingAdd(t *testing.T) {
	a := BlockingSnapshot{Ops: 10, Blocked: 1, BlockedNanos: 100}
	b := BlockingSnapshot{Ops: 30, Blocked: 3, BlockedNanos: 300}
	a.Add(b)
	if a.Ops != 40 || a.Blocked != 4 || a.BlockedNanos != 400 {
		t.Fatalf("merged = %+v", a)
	}
}

func TestStaleness(t *testing.T) {
	var st Staleness
	st.Record(0, 0) // fresh, fully merged
	st.Record(2, 3) // old with 2 fresher, 3 unmerged versions
	st.Record(0, 1) // fresh but unmerged versions exist
	s := st.Snapshot()
	if s.Reads != 3 || s.Old != 1 || s.Unmerged != 2 {
		t.Fatalf("snapshot = %+v", s)
	}
	if got := s.PercentOld(); got < 33.3 || got > 33.4 {
		t.Fatalf("PercentOld = %v", got)
	}
	if got := s.PercentUnmerged(); got < 66.6 || got > 66.7 {
		t.Fatalf("PercentUnmerged = %v", got)
	}
	if got := s.MeanFresher(); got != 2 {
		t.Fatalf("MeanFresher = %v", got)
	}
	if got := s.MeanUnmergedVersions(); got != 2 {
		t.Fatalf("MeanUnmergedVersions = %v", got)
	}
}

func TestStalenessOldImpliesCounted(t *testing.T) {
	var st Staleness
	s := st.Snapshot()
	if s.PercentOld() != 0 || s.MeanFresher() != 0 || s.MeanUnmergedVersions() != 0 {
		t.Fatal("empty staleness must be zero")
	}
}

func TestStalenessAdd(t *testing.T) {
	a := StalenessSnapshot{Reads: 10, Old: 2, Unmerged: 1, FresherSum: 4, UnmergedSum: 2}
	a.Add(StalenessSnapshot{Reads: 10, Old: 2, Unmerged: 3, FresherSum: 2, UnmergedSum: 4})
	if a.Reads != 20 || a.Old != 4 || a.Unmerged != 4 || a.FresherSum != 6 || a.UnmergedSum != 6 {
		t.Fatalf("merged = %+v", a)
	}
}

func TestLatencyMean(t *testing.T) {
	var l Latency
	l.Record(10 * time.Millisecond)
	l.Record(30 * time.Millisecond)
	s := l.Snapshot()
	if s.Count != 2 {
		t.Fatalf("Count = %d", s.Count)
	}
	if got := s.Mean(); got != 20*time.Millisecond {
		t.Fatalf("Mean = %v", got)
	}
}

func TestLatencyPercentileBounds(t *testing.T) {
	var l Latency
	for i := 0; i < 90; i++ {
		l.Record(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		l.Record(time.Second)
	}
	s := l.Snapshot()
	p50 := s.Percentile(50)
	if p50 < 512*time.Microsecond || p50 > 4*time.Millisecond {
		t.Fatalf("P50 = %v, want ~1ms bucket", p50)
	}
	p99 := s.Percentile(99)
	if p99 < 512*time.Millisecond || p99 > 4*time.Second {
		t.Fatalf("P99 = %v, want ~1s bucket", p99)
	}
}

func TestLatencyNegativeClamped(t *testing.T) {
	var l Latency
	l.Record(-time.Second)
	s := l.Snapshot()
	if s.Sum != 0 || s.Count != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestLatencyEmptyPercentile(t *testing.T) {
	var s LatencySnapshot
	if s.Percentile(99) != 0 || s.Mean() != 0 {
		t.Fatal("empty latency snapshot must be zero")
	}
}

func TestLatencyAdd(t *testing.T) {
	var a, b Latency
	a.Record(time.Millisecond)
	b.Record(3 * time.Millisecond)
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Add(sb)
	if sa.Count != 2 {
		t.Fatalf("Count = %d", sa.Count)
	}
	if sa.Mean() != 2*time.Millisecond {
		t.Fatalf("Mean = %v", sa.Mean())
	}
}

func TestConcurrentRecorders(t *testing.T) {
	var b Blocking
	var st Staleness
	var l Latency
	var wg sync.WaitGroup
	const workers = 8
	const per = 2000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				b.Record(time.Duration(i%2) * time.Microsecond)
				st.Record(i%3, i%2)
				l.Record(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := b.Snapshot().Ops; got != workers*per {
		t.Fatalf("Blocking.Ops = %d", got)
	}
	if got := st.Snapshot().Reads; got != workers*per {
		t.Fatalf("Staleness.Reads = %d", got)
	}
	if got := l.Snapshot().Count; got != workers*per {
		t.Fatalf("Latency.Count = %d", got)
	}
}

func TestBlockingSub(t *testing.T) {
	later := BlockingSnapshot{Ops: 10, Blocked: 4, BlockedNanos: 400}
	earlier := BlockingSnapshot{Ops: 6, Blocked: 1, BlockedNanos: 100}
	d := later.Sub(earlier)
	if d.Ops != 4 || d.Blocked != 3 || d.BlockedNanos != 300 {
		t.Fatalf("delta = %+v", d)
	}
}

func TestStalenessSub(t *testing.T) {
	later := StalenessSnapshot{Reads: 10, Old: 4, Unmerged: 3, FresherSum: 8, UnmergedSum: 6}
	earlier := StalenessSnapshot{Reads: 5, Old: 1, Unmerged: 1, FresherSum: 2, UnmergedSum: 2}
	d := later.Sub(earlier)
	if d.Reads != 5 || d.Old != 3 || d.Unmerged != 2 || d.FresherSum != 6 || d.UnmergedSum != 4 {
		t.Fatalf("delta = %+v", d)
	}
}
