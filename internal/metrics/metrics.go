// Package metrics collects the statistics the paper's evaluation reports:
// operation latencies and throughput, POCC's blocking incidence (probability
// and duration of stalled requests — Fig. 2a / 3c), and the data-staleness
// statistics of returned items (%old, %unmerged, fresher/unmerged version
// counts — Fig. 2b / 3d). All recorders are lock-free and safe for concurrent
// use; snapshots can be merged across servers and clients.
package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Blocking records how often and for how long operations stall on a server
// waiting for missing dependencies (the OCC lazy-dependency-resolution cost).
type Blocking struct {
	ops          atomic.Uint64
	blocked      atomic.Uint64
	blockedNanos atomic.Uint64
}

// Record notes one operation; blockedFor > 0 means the operation stalled.
func (b *Blocking) Record(blockedFor time.Duration) {
	b.ops.Add(1)
	if blockedFor > 0 {
		b.blocked.Add(1)
		b.blockedNanos.Add(uint64(blockedFor))
	}
}

// BlockingSnapshot is an immutable view of a Blocking recorder.
type BlockingSnapshot struct {
	Ops          uint64
	Blocked      uint64
	BlockedNanos uint64
}

// Snapshot captures the current counters.
func (b *Blocking) Snapshot() BlockingSnapshot {
	return BlockingSnapshot{
		Ops:          b.ops.Load(),
		Blocked:      b.blocked.Load(),
		BlockedNanos: b.blockedNanos.Load(),
	}
}

// Add merges another snapshot into s.
func (s *BlockingSnapshot) Add(o BlockingSnapshot) {
	s.Ops += o.Ops
	s.Blocked += o.Blocked
	s.BlockedNanos += o.BlockedNanos
}

// Sub returns s minus o (counter delta between two snapshots of the same
// recorder; o must be the earlier one).
func (s BlockingSnapshot) Sub(o BlockingSnapshot) BlockingSnapshot {
	return BlockingSnapshot{
		Ops:          s.Ops - o.Ops,
		Blocked:      s.Blocked - o.Blocked,
		BlockedNanos: s.BlockedNanos - o.BlockedNanos,
	}
}

// Probability returns the fraction of operations that blocked.
func (s BlockingSnapshot) Probability() float64 {
	if s.Ops == 0 {
		return 0
	}
	return float64(s.Blocked) / float64(s.Ops)
}

// MeanBlockTime returns the average stall duration of blocked operations.
func (s BlockingSnapshot) MeanBlockTime() time.Duration {
	if s.Blocked == 0 {
		return 0
	}
	return time.Duration(s.BlockedNanos / s.Blocked)
}

// Staleness records how fresh the data returned to clients is. A returned
// item is "old" if the chain holds a fresher version than the returned one;
// it is "unmerged" if the chain holds at least one version that is not yet
// visible under the engine's visibility rule (paper §V-B definitions).
type Staleness struct {
	reads       atomic.Uint64
	old         atomic.Uint64
	unmerged    atomic.Uint64
	fresherSum  atomic.Uint64
	unmergedSum atomic.Uint64
}

// Record notes one read that returned a version with the given number of
// fresher versions ahead of it and invisible versions in its chain.
func (s *Staleness) Record(fresher, invisible int) {
	s.reads.Add(1)
	if fresher > 0 {
		s.old.Add(1)
		s.fresherSum.Add(uint64(fresher))
	}
	if invisible > 0 {
		s.unmerged.Add(1)
		s.unmergedSum.Add(uint64(invisible))
	}
}

// StalenessSnapshot is an immutable view of a Staleness recorder.
type StalenessSnapshot struct {
	Reads       uint64
	Old         uint64
	Unmerged    uint64
	FresherSum  uint64
	UnmergedSum uint64
}

// Snapshot captures the current counters.
func (s *Staleness) Snapshot() StalenessSnapshot {
	return StalenessSnapshot{
		Reads:       s.reads.Load(),
		Old:         s.old.Load(),
		Unmerged:    s.unmerged.Load(),
		FresherSum:  s.fresherSum.Load(),
		UnmergedSum: s.unmergedSum.Load(),
	}
}

// Add merges another snapshot into s.
func (s *StalenessSnapshot) Add(o StalenessSnapshot) {
	s.Reads += o.Reads
	s.Old += o.Old
	s.Unmerged += o.Unmerged
	s.FresherSum += o.FresherSum
	s.UnmergedSum += o.UnmergedSum
}

// Sub returns s minus o (counter delta between two snapshots of the same
// recorder; o must be the earlier one).
func (s StalenessSnapshot) Sub(o StalenessSnapshot) StalenessSnapshot {
	return StalenessSnapshot{
		Reads:       s.Reads - o.Reads,
		Old:         s.Old - o.Old,
		Unmerged:    s.Unmerged - o.Unmerged,
		FresherSum:  s.FresherSum - o.FresherSum,
		UnmergedSum: s.UnmergedSum - o.UnmergedSum,
	}
}

// PercentOld returns the percentage of reads that returned an old item.
func (s StalenessSnapshot) PercentOld() float64 {
	if s.Reads == 0 {
		return 0
	}
	return 100 * float64(s.Old) / float64(s.Reads)
}

// PercentUnmerged returns the percentage of reads whose chain held unmerged
// versions.
func (s StalenessSnapshot) PercentUnmerged() float64 {
	if s.Reads == 0 {
		return 0
	}
	return 100 * float64(s.Unmerged) / float64(s.Reads)
}

// MeanFresher returns the average number of fresher versions ahead of an old
// returned item.
func (s StalenessSnapshot) MeanFresher() float64 {
	if s.Old == 0 {
		return 0
	}
	return float64(s.FresherSum) / float64(s.Old)
}

// MeanUnmergedVersions returns the average number of unmerged versions in the
// chain of an unmerged returned item.
func (s StalenessSnapshot) MeanUnmergedVersions() float64 {
	if s.Unmerged == 0 {
		return 0
	}
	return float64(s.UnmergedSum) / float64(s.Unmerged)
}

// histBuckets is the number of power-of-two latency buckets (covers up to
// ~9.2s at nanosecond resolution with 34 buckets; 48 leaves headroom).
const histBuckets = 48

// Latency is a lock-free log-bucketed latency histogram with exact count and
// sum (for means) and approximate percentiles.
type Latency struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Record adds one latency observation.
func (l *Latency) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	l.count.Add(1)
	l.sum.Add(uint64(d))
	b := bits.Len64(uint64(d)) // 0 for 0ns, else floor(log2)+1
	if b >= histBuckets {
		b = histBuckets - 1
	}
	l.buckets[b].Add(1)
}

// LatencySnapshot is an immutable view of a Latency recorder.
type LatencySnapshot struct {
	Count   uint64
	Sum     uint64
	Buckets [histBuckets]uint64
}

// Snapshot captures the current histogram.
func (l *Latency) Snapshot() LatencySnapshot {
	var s LatencySnapshot
	s.Count = l.count.Load()
	s.Sum = l.sum.Load()
	for i := range l.buckets {
		s.Buckets[i] = l.buckets[i].Load()
	}
	return s
}

// Add merges another snapshot into s.
func (s *LatencySnapshot) Add(o LatencySnapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Mean returns the exact average latency.
func (s LatencySnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.Sum / s.Count)
}

// Percentile returns an approximate percentile (0 < p <= 100): the upper edge
// of the bucket containing the p-th observation.
func (s LatencySnapshot) Percentile(p float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	target := uint64(math.Ceil(float64(s.Count) * p / 100))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i, c := range s.Buckets {
		seen += c
		if seen >= target {
			if i == 0 {
				return 0
			}
			return time.Duration(uint64(1)<<uint(i)) - 1
		}
	}
	return time.Duration(math.MaxInt64)
}
