// Package workload implements the paper's workload model: keys drawn from a
// zipf(0.99) distribution within each partition, closed-loop clients with
// think time, GET:PUT mixes (Fig. 1/2) and RO-TX+PUT mixes (Fig. 3).
package workload

import (
	"math"
	"math/rand/v2"
	"sort"
)

// Zipf samples ranks in [0, n) with probability proportional to
// 1/(rank+1)^s. Unlike the standard library's rand.Zipf, it supports
// exponents s <= 1 — the paper uses s = 0.99. Sampling uses a precomputed
// cumulative table with binary search; a Zipf is immutable after
// construction and safe for concurrent use with per-caller rand sources.
type Zipf struct {
	cdf []float64
}

// NewZipf builds a sampler over n ranks with exponent s. It panics if n < 1
// or s < 0 (programmer error).
func NewZipf(n int, s float64) *Zipf {
	if n < 1 {
		panic("workload: NewZipf needs n >= 1")
	}
	if s < 0 {
		panic("workload: NewZipf needs s >= 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	// Normalize so the last entry is exactly 1.
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[n-1] = 1
	return &Zipf{cdf: cdf}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Sample draws a rank using r.
func (z *Zipf) Sample(r *rand.Rand) int {
	u := r.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}
