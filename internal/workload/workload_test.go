package workload

import (
	"context"
	"errors"
	"math/rand/v2"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/keyspace"
)

func TestZipfBounds(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := 1 + int(nRaw%1000)
		z := NewZipf(n, 0.99)
		r := rand.New(rand.NewPCG(seed, 1))
		for i := 0; i < 50; i++ {
			s := z.Sample(r)
			if s < 0 || s >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(1000, 0.99)
	r := rand.New(rand.NewPCG(7, 7))
	counts := make([]int, 1000)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[z.Sample(r)]++
	}
	// Rank 0 must be far hotter than rank 100; with s=0.99 the ratio of
	// probabilities is ~100^0.99 ≈ 95.
	if counts[0] < 20*counts[100] {
		t.Fatalf("zipf not skewed enough: rank0=%d rank100=%d", counts[0], counts[100])
	}
	// The head must not absorb everything: zipf(0.99) over 1000 ranks gives
	// rank 0 about 13% of the mass.
	frac := float64(counts[0]) / draws
	if frac < 0.08 || frac > 0.25 {
		t.Fatalf("rank-0 mass = %v, want ~0.13", frac)
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	z := NewZipf(10, 0)
	r := rand.New(rand.NewPCG(3, 9))
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[z.Sample(r)]++
	}
	for rank, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("s=0 must be uniform; rank %d got %d", rank, c)
		}
	}
}

func TestZipfPanics(t *testing.T) {
	for _, tc := range []struct {
		n int
		s float64
	}{{0, 1}, {-1, 1}, {5, -0.1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(%d, %v) must panic", tc.n, tc.s)
				}
			}()
			NewZipf(tc.n, tc.s)
		}()
	}
}

func TestGetPutMixCycle(t *testing.T) {
	tbl := keyspace.Build(8, 20)
	z := NewZipf(20, 0.99)
	g := NewGetPutMix(tbl, z, 4, 8)
	r := rand.New(rand.NewPCG(1, 1))
	for cycle := 0; cycle < 10; cycle++ {
		partitions := map[int]bool{}
		for i := 0; i < 4; i++ {
			op := g.Next(r)
			if op.Kind != OpGet {
				t.Fatalf("op %d of cycle %d: kind = %v, want GET", i, cycle, op.Kind)
			}
			p := keyspace.PartitionOf(op.Keys[0], 8)
			if partitions[p] {
				t.Fatalf("GET round repeated partition %d", p)
			}
			partitions[p] = true
		}
		op := g.Next(r)
		if op.Kind != OpPut {
			t.Fatalf("cycle %d: want PUT after 4 GETs, got %v", cycle, op.Kind)
		}
		if len(op.Value) != 8 {
			t.Fatalf("PUT value size = %d", len(op.Value))
		}
	}
}

func TestGetPutMixRatioBeyondPartitions(t *testing.T) {
	tbl := keyspace.Build(2, 10)
	g := NewGetPutMix(tbl, NewZipf(10, 0.99), 5, 8)
	r := rand.New(rand.NewPCG(2, 2))
	gets, puts := 0, 0
	for i := 0; i < 60; i++ {
		switch g.Next(r).Kind {
		case OpGet:
			gets++
		case OpPut:
			puts++
		}
	}
	if gets != 50 || puts != 10 {
		t.Fatalf("gets=%d puts=%d, want 50/10", gets, puts)
	}
}

func TestROTxMixAlternates(t *testing.T) {
	tbl := keyspace.Build(8, 20)
	g := NewROTxMix(tbl, NewZipf(20, 0.99), 4, 8)
	r := rand.New(rand.NewPCG(5, 5))
	for i := 0; i < 10; i++ {
		tx := g.Next(r)
		if tx.Kind != OpROTx {
			t.Fatalf("want ROTx, got %v", tx.Kind)
		}
		if len(tx.Keys) != 4 {
			t.Fatalf("tx reads %d keys, want 4", len(tx.Keys))
		}
		seen := map[int]bool{}
		for _, k := range tx.Keys {
			p := keyspace.PartitionOf(k, 8)
			if seen[p] {
				t.Fatal("RO-TX must touch distinct partitions")
			}
			seen[p] = true
		}
		put := g.Next(r)
		if put.Kind != OpPut {
			t.Fatalf("want PUT after tx, got %v", put.Kind)
		}
	}
}

func TestROTxMixClamped(t *testing.T) {
	tbl := keyspace.Build(3, 10)
	g := NewROTxMix(tbl, NewZipf(10, 0.99), 99, 8)
	r := rand.New(rand.NewPCG(6, 6))
	if op := g.Next(r); len(op.Keys) != 3 {
		t.Fatalf("tx keys = %d, want clamped to 3", len(op.Keys))
	}
}

// fakeSession counts operations and injects a fixed service latency.
type fakeSession struct {
	mu   sync.Mutex
	gets int
	puts int
	txs  int
	err  error
}

func (f *fakeSession) Get(string) ([]byte, error) {
	f.mu.Lock()
	f.gets++
	f.mu.Unlock()
	time.Sleep(100 * time.Microsecond)
	return []byte("v"), f.err
}

func (f *fakeSession) Put(string, []byte) error {
	f.mu.Lock()
	f.puts++
	f.mu.Unlock()
	time.Sleep(100 * time.Microsecond)
	return f.err
}

func (f *fakeSession) ROTx(keys []string) (map[string][]byte, error) {
	f.mu.Lock()
	f.txs++
	f.mu.Unlock()
	time.Sleep(100 * time.Microsecond)
	return map[string][]byte{}, f.err
}

func TestRunnerBasic(t *testing.T) {
	tbl := keyspace.Build(4, 10)
	z := NewZipf(10, 0.99)
	sess := &fakeSession{}
	res, err := Run(context.Background(), RunnerConfig{
		Clients:      4,
		NewSession:   func(int) Session { return sess },
		NewGenerator: func(int) Generator { return NewGetPutMix(tbl, z, 3, 8) },
		ThinkTime:    time.Millisecond,
		Warmup:       50 * time.Millisecond,
		Measure:      200 * time.Millisecond,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("runner recorded no operations")
	}
	if res.Gets == 0 || res.Puts == 0 {
		t.Fatalf("mix not exercised: %+v", res)
	}
	if res.Errors != 0 {
		t.Fatalf("unexpected errors: %d", res.Errors)
	}
	if res.Throughput() <= 0 {
		t.Fatal("throughput must be positive")
	}
	// Closed loop: ops <= clients * window / (think + service).
	maxOps := uint64(4 * (250 * time.Millisecond) / (time.Millisecond))
	if res.Ops > maxOps {
		t.Fatalf("ops = %d exceeds closed-loop bound %d", res.Ops, maxOps)
	}
	if res.AllLatency.Count != res.Ops {
		t.Fatalf("latency count %d != ops %d", res.AllLatency.Count, res.Ops)
	}
}

func TestRunnerCountsErrors(t *testing.T) {
	tbl := keyspace.Build(2, 5)
	z := NewZipf(5, 0.99)
	sess := &fakeSession{err: errors.New("boom")}
	res, err := Run(context.Background(), RunnerConfig{
		Clients:      2,
		NewSession:   func(int) Session { return sess },
		NewGenerator: func(int) Generator { return NewGetPutMix(tbl, z, 1, 8) },
		Warmup:       10 * time.Millisecond,
		Measure:      50 * time.Millisecond,
		Seed:         2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors == 0 {
		t.Fatal("errors must be counted")
	}
	if res.Ops != 0 {
		t.Fatal("failed ops must not count as completed")
	}
}

func TestRunnerValidation(t *testing.T) {
	if _, err := Run(context.Background(), RunnerConfig{}); err == nil {
		t.Fatal("empty config must be rejected")
	}
	if _, err := Run(context.Background(), RunnerConfig{Clients: 1}); err == nil {
		t.Fatal("missing factories must be rejected")
	}
}

func TestRunnerHonorsContextCancel(t *testing.T) {
	tbl := keyspace.Build(2, 5)
	z := NewZipf(5, 0.99)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := Run(ctx, RunnerConfig{
		Clients:      2,
		NewSession:   func(int) Session { return &fakeSession{} },
		NewGenerator: func(int) Generator { return NewGetPutMix(tbl, z, 1, 8) },
		Warmup:       time.Second,
		Measure:      10 * time.Second,
		Seed:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("cancelled runner must return promptly")
	}
}
