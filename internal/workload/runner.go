package workload

import (
	"context"
	"errors"
	"math/rand/v2"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Session is the client-facing surface the runner drives. It matches the
// paper's API (§II-C): PUT, GET and causally consistent read-only
// transactions.
type Session interface {
	Get(key string) ([]byte, error)
	Put(key string, value []byte) error
	ROTx(keys []string) (map[string][]byte, error)
}

// RunnerConfig parameterizes a closed-loop load run.
type RunnerConfig struct {
	// Clients is the number of concurrent closed-loop clients.
	Clients int
	// NewSession builds the session for client i (sessions pin clients to a
	// DC, so the factory decides placement).
	NewSession func(i int) Session
	// NewGenerator builds the per-client operation generator.
	NewGenerator func(i int) Generator
	// ThinkTime is the pause between consecutive operations (25 ms in the
	// paper; scaled down in CI-sized runs).
	ThinkTime time.Duration
	// Warmup is discarded before measurement starts.
	Warmup time.Duration
	// Measure is the measurement window length.
	Measure time.Duration
	// Seed makes client randomness reproducible.
	Seed uint64
}

// Result aggregates client-side measurements over the measurement window.
type Result struct {
	Ops        uint64
	Gets       uint64
	Puts       uint64
	Txs        uint64
	Errors     uint64
	Elapsed    time.Duration
	AllLatency metrics.LatencySnapshot
	GetLatency metrics.LatencySnapshot
	PutLatency metrics.LatencySnapshot
	TxLatency  metrics.LatencySnapshot
}

// Throughput returns measured operations per second.
func (r Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// Run drives cfg.Clients closed-loop clients: each repeatedly draws an
// operation, executes it against its session, then thinks. Latencies and
// counts are recorded only inside the measurement window. Run returns once
// the window has elapsed and every client goroutine has stopped.
func Run(ctx context.Context, cfg RunnerConfig) (Result, error) {
	if cfg.Clients <= 0 {
		return Result{}, errors.New("workload: Clients must be positive")
	}
	if cfg.NewSession == nil || cfg.NewGenerator == nil {
		return Result{}, errors.New("workload: NewSession and NewGenerator are required")
	}

	runCtx, cancel := context.WithTimeout(ctx, cfg.Warmup+cfg.Measure)
	defer cancel()

	start := time.Now()
	measureFrom := start.Add(cfg.Warmup)

	type clientStats struct {
		Result
		all, get, put, tx metrics.Latency
	}
	stats := make([]clientStats, cfg.Clients)

	var wg sync.WaitGroup
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sess := cfg.NewSession(i)
			gen := cfg.NewGenerator(i)
			rng := rand.New(rand.NewPCG(cfg.Seed, uint64(i)+1))
			st := &stats[i]
			for runCtx.Err() == nil {
				op := gen.Next(rng)
				opStart := time.Now()
				var err error
				switch op.Kind {
				case OpGet:
					_, err = sess.Get(op.Keys[0])
				case OpPut:
					err = sess.Put(op.Keys[0], op.Value)
				case OpROTx:
					_, err = sess.ROTx(op.Keys)
				}
				end := time.Now()
				if end.After(measureFrom) && runCtx.Err() == nil {
					if err != nil {
						st.Errors++
					} else {
						lat := end.Sub(opStart)
						st.Ops++
						st.all.Record(lat)
						switch op.Kind {
						case OpGet:
							st.Gets++
							st.get.Record(lat)
						case OpPut:
							st.Puts++
							st.put.Record(lat)
						case OpROTx:
							st.Txs++
							st.tx.Record(lat)
						}
					}
				}
				if cfg.ThinkTime > 0 {
					select {
					case <-runCtx.Done():
					case <-time.After(cfg.ThinkTime):
					}
				}
			}
		}(i)
	}
	wg.Wait()

	var out Result
	out.Elapsed = time.Since(measureFrom)
	if out.Elapsed > cfg.Measure {
		out.Elapsed = cfg.Measure
	}
	for i := range stats {
		st := &stats[i]
		out.Ops += st.Ops
		out.Gets += st.Gets
		out.Puts += st.Puts
		out.Txs += st.Txs
		out.Errors += st.Errors
		out.AllLatency.Add(st.all.Snapshot())
		out.GetLatency.Add(st.get.Snapshot())
		out.PutLatency.Add(st.put.Snapshot())
		out.TxLatency.Add(st.tx.Snapshot())
	}
	return out, nil
}
