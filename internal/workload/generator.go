package workload

import (
	"math/rand/v2"

	"repro/internal/keyspace"
)

// OpKind enumerates client operations.
type OpKind int

// Operation kinds.
const (
	OpGet OpKind = iota + 1
	OpPut
	OpROTx
)

// Op is one operation a client should issue.
type Op struct {
	Kind  OpKind
	Keys  []string // one key for Get/Put, the read set for ROTx
	Value []byte   // payload for Put
}

// Generator produces the next operation for a closed-loop client. Generators
// are stateful and owned by exactly one client goroutine.
type Generator interface {
	Next(r *rand.Rand) Op
}

// GetPutMix reproduces the paper's GET:PUT workload (§V-B): a GET:PUT ratio
// of N:1 means each client issues N consecutive GETs followed by one PUT.
// Each GET targets a different partition (a random selection of distinct
// partitions per round); the PUT goes to a uniformly random partition. Keys
// within a partition follow the zipf distribution.
type GetPutMix struct {
	Table      *keyspace.Table
	Zipf       *Zipf
	GetsPerPut int
	ValueSize  int

	step  int
	order []int // partitions of the current GET round
}

// NewGetPutMix builds the generator. The minimum mix is 1:1.
func NewGetPutMix(table *keyspace.Table, zipf *Zipf, getsPerPut, valueSize int) *GetPutMix {
	if getsPerPut < 1 {
		getsPerPut = 1
	}
	return &GetPutMix{Table: table, Zipf: zipf, GetsPerPut: getsPerPut, ValueSize: valueSize}
}

// Next returns the next operation in the N-GETs-then-one-PUT cycle.
func (g *GetPutMix) Next(r *rand.Rand) Op {
	i := g.step % (g.GetsPerPut + 1)
	g.step++
	if i == g.GetsPerPut {
		p := int(r.Uint64N(uint64(g.Table.Partitions())))
		key := g.Table.Key(p, g.Zipf.Sample(r))
		return Op{Kind: OpPut, Keys: []string{key}, Value: randValue(r, g.ValueSize)}
	}
	if i == 0 {
		g.order = distinctPartitions(r, g.Table.Partitions(), g.GetsPerPut, g.order[:0])
	}
	// If the ratio exceeds the partition count, partitions repeat round-robin.
	p := g.order[i%len(g.order)]
	key := g.Table.Key(p, g.Zipf.Sample(r))
	return Op{Kind: OpGet, Keys: []string{key}}
}

// ROTxMix reproduces the paper's transactional workload (§V-C): each client
// first issues a RO-TX reading p items from p distinct partitions, then a
// PUT against a uniformly random partition.
type ROTxMix struct {
	Table        *keyspace.Table
	Zipf         *Zipf
	TxPartitions int
	ValueSize    int

	putNext bool
	scratch []int
}

// NewROTxMix builds the generator; txPartitions is clamped to the number of
// partitions.
func NewROTxMix(table *keyspace.Table, zipf *Zipf, txPartitions, valueSize int) *ROTxMix {
	if txPartitions < 1 {
		txPartitions = 1
	}
	if txPartitions > table.Partitions() {
		txPartitions = table.Partitions()
	}
	return &ROTxMix{Table: table, Zipf: zipf, TxPartitions: txPartitions, ValueSize: valueSize}
}

// Next alternates RO-TX and PUT.
func (g *ROTxMix) Next(r *rand.Rand) Op {
	if g.putNext {
		g.putNext = false
		p := int(r.Uint64N(uint64(g.Table.Partitions())))
		key := g.Table.Key(p, g.Zipf.Sample(r))
		return Op{Kind: OpPut, Keys: []string{key}, Value: randValue(r, g.ValueSize)}
	}
	g.putNext = true
	g.scratch = distinctPartitions(r, g.Table.Partitions(), g.TxPartitions, g.scratch[:0])
	keys := make([]string, len(g.scratch))
	for i, p := range g.scratch {
		keys[i] = g.Table.Key(p, g.Zipf.Sample(r))
	}
	return Op{Kind: OpROTx, Keys: keys}
}

// distinctPartitions appends k distinct partitions drawn from [0, n) to dst
// via a partial Fisher-Yates shuffle.
func distinctPartitions(r *rand.Rand, n, k int, dst []int) []int {
	if k > n {
		k = n
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + int(r.Uint64N(uint64(n-i)))
		perm[i], perm[j] = perm[j], perm[i]
		dst = append(dst, perm[i])
	}
	return dst
}

// randValue generates a payload of the given size (8 bytes in the paper).
func randValue(r *rand.Rand, size int) []byte {
	if size <= 0 {
		size = 8
	}
	b := make([]byte, size)
	for i := range b {
		b[i] = byte('a' + r.Uint64N(26))
	}
	return b
}
