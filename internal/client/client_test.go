package client_test

import (
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/core"
)

// The client package is exercised against a tiny real cluster: its behaviour
// (Algorithm 1) is only meaningful coupled to servers.

func twoDC(t *testing.T, engine cluster.Engine) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.Config{
		NumDCs: 2, NumPartitions: 2, Engine: engine,
		HeartbeatInterval: time.Millisecond,
		Latency:           cluster.UniformLatency(50*time.Microsecond, time.Millisecond),
		Seed:              31,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestNewSessionValidation(t *testing.T) {
	if _, err := client.NewSession(client.Config{}); err == nil {
		t.Fatal("missing router must be rejected")
	}
}

func TestGetUpdatesRDVAndDV(t *testing.T) {
	c := twoDC(t, cluster.POCC)
	writer, err := c.NewSession(0)
	if err != nil {
		t.Fatal(err)
	}
	// Build a chain: write dep, then write top (whose version carries dep in
	// its dependency vector).
	if err := writer.Put("dep", []byte("d")); err != nil {
		t.Fatal(err)
	}
	if err := writer.Put("top", []byte("t")); err != nil {
		t.Fatal(err)
	}

	reader, err := c.NewSession(0)
	if err != nil {
		t.Fatal(err)
	}
	if rdv := reader.RDV(); rdv.Get(0) != 0 {
		t.Fatal("fresh session must have zero RDV")
	}
	reply, err := reader.GetReply("top")
	if err != nil {
		t.Fatal(err)
	}
	if !reply.Exists {
		t.Fatal("top must exist")
	}
	// RDV absorbed top's deps; DV additionally holds top itself.
	if rdv := reader.RDV(); rdv.Get(0) < reply.Deps.Get(0) {
		t.Fatalf("RDV %v must cover item deps %v", rdv, reply.Deps)
	}
	if dv := reader.DV(); dv.Get(0) < reply.UpdateTime {
		t.Fatalf("DV %v must cover the read item's timestamp %d", dv, reply.UpdateTime)
	}
	// RDV must NOT include the read item itself, only its dependencies: the
	// item's own timestamp exceeds its deps entry.
	if rdv := reader.RDV(); rdv.Get(0) >= reply.UpdateTime {
		t.Fatalf("RDV %v leaked the read item's own timestamp %d", rdv, reply.UpdateTime)
	}
}

func TestPutMetaReturnsIdentity(t *testing.T) {
	c := twoDC(t, cluster.POCC)
	s, err := c.NewSession(1)
	if err != nil {
		t.Fatal(err)
	}
	ut, dc, err := s.PutMeta("k", []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	if dc != 1 {
		t.Fatalf("source replica = %d, want the session's DC", dc)
	}
	if ut == 0 {
		t.Fatal("update time must be assigned")
	}
	if dv := s.DV(); dv.Get(1) != ut {
		t.Fatalf("DV[1] = %d, want %d", dv.Get(1), ut)
	}
}

func TestROTxTracksReads(t *testing.T) {
	c := twoDC(t, cluster.POCC)
	s, err := c.NewSession(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", []byte("2")); err != nil {
		t.Fatal(err)
	}
	fresh, err := c.NewSession(0)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := fresh.ROTx([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if string(vals["a"]) != "1" || string(vals["b"]) != "2" {
		t.Fatalf("tx = %v", vals)
	}
	if dv := fresh.DV(); dv.Get(0) == 0 {
		t.Fatal("transactional reads must establish dependencies")
	}
}

func TestROTxMissingKeys(t *testing.T) {
	c := twoDC(t, cluster.POCC)
	s, err := c.NewSession(0)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := s.ROTx([]string{"ghost"})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := vals["ghost"]; !ok || v != nil {
		t.Fatalf("missing key must map to nil, got %v", vals)
	}
}

func TestModeLifecycle(t *testing.T) {
	c := twoDC(t, cluster.Cure)
	s, err := c.NewSession(0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Mode() != core.Pessimistic {
		t.Fatal("Cure* sessions must start pessimistic")
	}
	if s.Fallbacks() != 0 || s.Promotions() != 0 {
		t.Fatal("fresh session must have no fallbacks/promotions")
	}
}

func TestSessionLatencyInjection(t *testing.T) {
	c, err := cluster.New(cluster.Config{
		NumDCs: 1, NumPartitions: 1, Engine: cluster.POCC,
		SessionLatency: 5 * time.Millisecond,
		Seed:           32,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	s, err := c.NewSession(0)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := s.Get("k"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("round trip %v, want >= 2x injected latency", elapsed)
	}
}
