// The connection pool: the client side of the binary front door. A Pool
// holds a few TCP connections to one kvserver listener (one data center) and
// multiplexes many RemoteSessions onto them — the paper's model of many
// client threads attached to one DC, without a socket per thread.
//
// Each connection runs a writer goroutine (coalescing queued request frames
// into one write per batch — the pipelining primitive) and a reader
// goroutine (matching response frames to in-flight requests by request id;
// the server completes requests out of order, so the table, not arrival
// order, ties responses back). A RemoteSession's synchronous operations ride
// the same slot-epoch retry policy as the in-process Session: a reshard
// rejection is retried with fresh routing (server-side) until
// SlotRetryBudget expires.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/wire"
)

const (
	// defaultPoolConns is the default socket count per DC. A handful of
	// connections saturates a listener long before a socket per session
	// would; request pipelining does the rest.
	defaultPoolConns = 4
	// poolWriteQueue bounds the per-connection queue of requests awaiting
	// the writer. Deep enough for a few hundred pipelined requests in
	// flight, shallow enough to apply backpressure to a runaway producer.
	poolWriteQueue = 1024
	// poolFlushBytes caps one coalesced write batch, mirroring the
	// server-side writer.
	poolFlushBytes = 256 * 1024
)

// ErrPoolClosed is returned by operations on a closed Pool.
var ErrPoolClosed = errors.New("client: pool closed")

// PoolConfig parameterizes a Pool.
type PoolConfig struct {
	// Addr is the kvserver listener address of one data center.
	Addr string
	// Conns is how many TCP connections to open. 0 selects a default of 4.
	Conns int
	// DialTimeout bounds each connection attempt. 0 selects 5s.
	DialTimeout time.Duration
	// SlotRetryBudget bounds how long one synchronous operation keeps
	// retrying through ErrWrongSlotEpoch while a reshard migrates its key's
	// slot. 0 selects the same 60s default as the in-process session.
	SlotRetryBudget time.Duration
}

// Pool is a set of pooled binary-protocol connections to one kvserver
// listener. It is safe for concurrent use.
type Pool struct {
	cfg         PoolConfig
	conns       []*poolConn
	nextConn    atomic.Uint64 // round-robin session placement
	nextSession atomic.Uint64
	closed      atomic.Bool
}

// DialPool opens the pool's connections. It fails fast: if any connection
// cannot be established, everything is torn down.
func DialPool(cfg PoolConfig) (*Pool, error) {
	if cfg.Conns <= 0 {
		cfg.Conns = defaultPoolConns
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.SlotRetryBudget <= 0 {
		cfg.SlotRetryBudget = defaultSlotRetryBudget
	}
	p := &Pool{cfg: cfg}
	for i := 0; i < cfg.Conns; i++ {
		pc, err := dialPoolConn(cfg.Addr, cfg.DialTimeout)
		if err != nil {
			p.Close()
			return nil, err
		}
		p.conns = append(p.conns, pc)
	}
	return p, nil
}

// Close closes every connection; in-flight calls complete with an error.
func (p *Pool) Close() {
	if !p.closed.CompareAndSwap(false, true) {
		return
	}
	for _, pc := range p.conns {
		pc.fail(ErrPoolClosed)
	}
}

// Session opens a RemoteSession, multiplexed onto one of the pool's
// connections round-robin. Sessions are cheap (an id and a counter slot on
// the server); open one per client thread of execution.
func (p *Pool) Session() *RemoteSession {
	pc := p.conns[p.nextConn.Add(1)%uint64(len(p.conns))]
	return &RemoteSession{pool: p, pc: pc, id: p.nextSession.Add(1)}
}

// RemoteError is an error reported by the server over the front door. It
// unwraps to the canonical error value its code names, so errors.Is works
// across the wire exactly as it does in-process.
type RemoteError struct {
	Code byte
	Text string
}

func (e *RemoteError) Error() string { return e.Text }

func (e *RemoteError) Unwrap() error {
	switch e.Code {
	case wire.FDCodeWrongSlotEpoch:
		return core.ErrWrongSlotEpoch
	case wire.FDCodeSessionClosed:
		return core.ErrSessionClosed
	case wire.FDCodeStopped:
		return core.ErrStopped
	case wire.FDCodeNoDataCenter:
		return ErrNoDataCenter
	}
	return nil
}

// Call is one in-flight front-door request. Issue many before waiting to
// pipeline them on the session's connection. The request rides inside the
// Call so one allocation covers the whole round trip.
type Call struct {
	req  wire.FrontDoorRequest
	resp wire.FrontDoorResponse
	err  error
	once sync.Once
	done chan struct{}
}

// complete finishes the call exactly once. A call can race two outcomes —
// its response arriving while the connection is being torn down — and the
// first completion wins; either way the caller learns the connection died
// or got its answer, both acceptable for an op that raced the teardown.
func (c *Call) complete(resp wire.FrontDoorResponse, err error) {
	c.once.Do(func() {
		c.resp, c.err = resp, err
		close(c.done)
	})
}

// Done is closed when the call completes.
func (c *Call) Done() <-chan struct{} { return c.done }

// Wait blocks for completion and returns the response. A server-reported
// error (FDErr) surfaces as a *RemoteError.
func (c *Call) Wait() (wire.FrontDoorResponse, error) {
	<-c.done
	if c.err != nil {
		return wire.FrontDoorResponse{}, c.err
	}
	if c.resp.Kind == wire.FDErr {
		return wire.FrontDoorResponse{}, &RemoteError{Code: c.resp.Code, Text: c.resp.Text}
	}
	return c.resp, nil
}

// RemoteSession is one client session multiplexed onto a pooled connection.
// Like the in-process Session, use it from one goroutine at a time for its
// operations to form a single thread of execution — different sessions of
// the same pool are fully independent.
type RemoteSession struct {
	pool *Pool
	pc   *poolConn
	id   uint64
}

// PingAsync issues a liveness check.
func (s *RemoteSession) PingAsync() *Call {
	return s.pc.send(wire.FrontDoorRequest{Op: wire.FDPing, Session: s.id})
}

// PutAsync issues a write without waiting for it.
func (s *RemoteSession) PutAsync(key string, value []byte) *Call {
	return s.pc.send(wire.FrontDoorRequest{Op: wire.FDPut, Session: s.id, Key: key, Value: value})
}

// GetAsync issues a read without waiting for it.
func (s *RemoteSession) GetAsync(key string) *Call {
	return s.pc.send(wire.FrontDoorRequest{Op: wire.FDGet, Session: s.id, Key: key})
}

// ROTxAsync issues a read-only transaction without waiting for it.
func (s *RemoteSession) ROTxAsync(keys []string) *Call {
	return s.pc.send(wire.FrontDoorRequest{Op: wire.FDROTx, Session: s.id, Keys: keys})
}

// StatsAsync requests the server's stats line.
func (s *RemoteSession) StatsAsync() *Call {
	return s.pc.send(wire.FrontDoorRequest{Op: wire.FDStats, Session: s.id})
}

// AdminAsync runs one admin command line (WHEREIS/SPLIT/MOVESLOTS/SLOTS/
// JOIN/LEAVE/EVICT/STATS).
func (s *RemoteSession) AdminAsync(line string) *Call {
	return s.pc.send(wire.FrontDoorRequest{Op: wire.FDAdmin, Session: s.id, Line: line})
}

// Ping checks liveness.
func (s *RemoteSession) Ping() error {
	_, err := s.PingAsync().Wait()
	return err
}

// Put writes key=value, retrying through reshard rejections within the
// pool's SlotRetryBudget.
func (s *RemoteSession) Put(key string, value []byte) error {
	var deadline time.Time
	for {
		_, err := s.PutAsync(key, value).Wait()
		if err == nil {
			return nil
		}
		if !s.retrySlotEpoch(err, &deadline) {
			return err
		}
	}
}

// Get reads key; nil means the key has no visible version.
func (s *RemoteSession) Get(key string) ([]byte, error) {
	var deadline time.Time
	for {
		resp, err := s.GetAsync(key).Wait()
		if err == nil {
			if !resp.Exists {
				return nil, nil
			}
			return resp.Value, nil
		}
		if !s.retrySlotEpoch(err, &deadline) {
			return nil, err
		}
	}
}

// ROTx reads keys atomically from a causal snapshot; missing keys map to
// nil, matching the in-process Session.
func (s *RemoteSession) ROTx(keys []string) (map[string][]byte, error) {
	var deadline time.Time
	for {
		resp, err := s.ROTxAsync(keys).Wait()
		if err == nil {
			out := make(map[string][]byte, len(resp.Items))
			for _, it := range resp.Items {
				if it.Exists {
					out[it.Key] = it.Value
				} else {
					out[it.Key] = nil
				}
			}
			return out, nil
		}
		if !s.retrySlotEpoch(err, &deadline) {
			return nil, err
		}
	}
}

// Stats returns the raw stats line.
func (s *RemoteSession) Stats() (string, error) {
	resp, err := s.StatsAsync().Wait()
	if err != nil {
		return "", err
	}
	return resp.Text, nil
}

// Admin runs one admin command line and returns its text output.
func (s *RemoteSession) Admin(line string) (string, error) {
	resp, err := s.AdminAsync(line).Wait()
	if err != nil {
		return "", err
	}
	return resp.Text, nil
}

// retrySlotEpoch is the pool twin of Session.handleSlotEpoch: pace retries
// through a reshard's drain, bounded by the pool's budget.
func (s *RemoteSession) retrySlotEpoch(err error, deadline *time.Time) bool {
	if !errors.Is(err, core.ErrWrongSlotEpoch) {
		return false
	}
	if deadline.IsZero() {
		*deadline = time.Now().Add(s.pool.cfg.SlotRetryBudget)
	} else if time.Now().After(*deadline) {
		return false
	}
	time.Sleep(slotRetryDelay)
	return true
}

// poolConn is one pooled connection: a writer goroutine coalescing queued
// frames, a reader goroutine completing in-flight calls by request id.
type poolConn struct {
	conn   net.Conn
	wq     chan *Call
	dead   chan struct{}
	nextID atomic.Uint64

	mu       sync.Mutex
	inflight map[uint64]*Call
	err      error // sticky death reason
}

func dialPoolConn(addr string, timeout time.Duration) (*poolConn, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("client: dial pool: %w", err)
	}
	// The magic byte selects the binary protocol on the server; everything
	// after it is frames.
	if _, err := conn.Write([]byte{wire.FrontDoorMagic}); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("client: dial pool: %w", err)
	}
	pc := &poolConn{
		conn:     conn,
		wq:       make(chan *Call, poolWriteQueue),
		dead:     make(chan struct{}),
		inflight: make(map[uint64]*Call),
	}
	go pc.writer()
	go pc.reader()
	return pc, nil
}

// send queues one request and returns its Call handle. On a dead connection
// the call completes immediately with the death reason.
func (pc *poolConn) send(req wire.FrontDoorRequest) *Call {
	req.ID = pc.nextID.Add(1)
	call := &Call{req: req, done: make(chan struct{})}
	select {
	case pc.wq <- call: // non-blocking fast path: the queue has room
	default:
		select {
		case pc.wq <- call:
		case <-pc.dead:
			call.complete(wire.FrontDoorResponse{}, pc.deathErr())
			return call
		}
	}
	// The writer may have died (and drained the queue) between the enqueue
	// and now; complete the stranded call ourselves. If the writer did pick
	// it up, completion is idempotent.
	select {
	case <-pc.dead:
		call.complete(wire.FrontDoorResponse{}, pc.deathErr())
	default:
	}
	return call
}

// writer registers each call in the in-flight table (before the bytes hit
// the wire, so the reader can never see a response for an unknown id),
// coalesces whatever is queued into one buffer, and issues one write per
// batch. The whole batch registers under one lock acquisition.
func (pc *poolConn) writer() {
	var scratch []byte
	batch := make([]*Call, 0, 64)
	for {
		var c *Call
		select {
		case c = <-pc.wq:
		case <-pc.dead:
			pc.drainQueue()
			return
		}
		batch = append(batch[:0], c)
		scratch = wire.AppendFrontDoorRequest(scratch[:0], &c.req)
	coalesce:
		for len(scratch) < poolFlushBytes {
			select {
			case more := <-pc.wq:
				batch = append(batch, more)
				scratch = wire.AppendFrontDoorRequest(scratch, &more.req)
			default:
				break coalesce
			}
		}
		pc.mu.Lock()
		if pc.err != nil {
			// The connection died while the batch was being staged; the
			// swapped-out in-flight table will never see these calls, so
			// complete them here.
			err := pc.err
			pc.mu.Unlock()
			for _, b := range batch {
				b.complete(wire.FrontDoorResponse{}, err)
			}
			pc.drainQueue()
			return
		}
		for _, b := range batch {
			pc.inflight[b.req.ID] = b
		}
		pc.mu.Unlock()
		if _, err := pc.conn.Write(scratch); err != nil {
			pc.fail(fmt.Errorf("client: pool write: %w", err))
			pc.drainQueue()
			return
		}
	}
}

// drainQueue fails whatever was queued behind a dead connection.
func (pc *poolConn) drainQueue() {
	for {
		select {
		case c := <-pc.wq:
			c.complete(wire.FrontDoorResponse{}, pc.deathErr())
		default:
			return
		}
	}
}

// reader completes in-flight calls as response frames arrive — in whatever
// order the server finished them. Frames already sitting in the read buffer
// (the server coalesces its writes, so they arrive in runs) are decoded
// together and resolved against the in-flight table under one lock.
func (pc *poolConn) reader() {
	br := bufio.NewReader(pc.conn)
	var buf []byte
	type arrival struct {
		resp wire.FrontDoorResponse
		call *Call
	}
	batch := make([]arrival, 0, 64)
	for {
		batch = batch[:0]
		for {
			frame, err := wire.ReadFrontDoorFrame(br, buf)
			if err != nil {
				pc.fail(fmt.Errorf("client: pool read: %w", err))
				return
			}
			buf = frame[:0]
			resp, err := wire.DecodeFrontDoorResponse(frame)
			if err != nil {
				pc.fail(fmt.Errorf("client: pool decode: %w", err))
				return
			}
			batch = append(batch, arrival{resp: resp})
			if br.Buffered() == 0 || len(batch) >= 256 {
				break
			}
		}
		pc.mu.Lock()
		for i := range batch {
			id := batch[i].resp.ID
			batch[i].call = pc.inflight[id]
			delete(pc.inflight, id)
		}
		pc.mu.Unlock()
		for i := range batch {
			if batch[i].call != nil {
				batch[i].call.complete(batch[i].resp, nil)
			}
			batch[i].call = nil
		}
	}
}

// fail kills the connection once: records the reason, releases the writer,
// closes the socket (releasing the reader), and completes every in-flight
// call with the reason.
func (pc *poolConn) fail(err error) {
	pc.mu.Lock()
	if pc.err != nil {
		pc.mu.Unlock()
		return
	}
	pc.err = err
	stranded := pc.inflight
	pc.inflight = make(map[uint64]*Call)
	pc.mu.Unlock()
	close(pc.dead)
	_ = pc.conn.Close()
	for _, call := range stranded {
		call.complete(wire.FrontDoorResponse{}, err)
	}
}

func (pc *poolConn) deathErr() error {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.err
}
