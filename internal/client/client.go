// Package client implements the POCC client session of Algorithm 1. A
// session maintains a dependency vector DV (everything the client's writes
// depend on) and a read dependency vector RDV (the dependencies of everything
// the client has read) and attaches them to every operation, providing the
// "cheap dependency meta-data" that lets servers resolve dependencies lazily.
//
// Sessions also implement HA-POCC's recovery (§III-B): when the server closes
// the session because a blocked request exceeded the block timeout, the
// session re-initializes itself in pessimistic mode (losing its optimistic
// dependency state, exactly as a cross-DC failover would), and is promoted
// back to optimistic once the local server stops suspecting a partition.
package client

import (
	"errors"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/msg"
	"repro/internal/vclock"
)

// ErrNoDataCenter is returned by operations on a session whose data center
// has left the deployment (cluster.RemoveDC): the router no longer resolves
// a server for it. The condition is permanent — open a session against a
// surviving DC instead.
var ErrNoDataCenter = errors.New("client: session's data center left the deployment")

// Slot-epoch retry pacing. While the cluster reshards (SplitPartition /
// MoveSlots), the old owner of a moved slot rejects operations with
// core.ErrWrongSlotEpoch until cluster routing flips to the new owner. The
// session retries with a fresh route resolution each attempt, so it lands on
// the new owner automatically once the flip happens; Config.SlotRetryBudget
// bounds how long a session camps on a reshard that never completes.
const (
	slotRetryDelay = 25 * time.Millisecond
	// defaultSlotRetryBudget is twice the cluster's default reshard drain
	// bound (30s), so a session never gives up on a slow but healthy
	// reshard. Deployments with a custom drain bound pass a matching budget
	// through Config.SlotRetryBudget instead.
	defaultSlotRetryBudget = 60 * time.Second
)

// Router maps keys to the partition servers of one data center.
type Router interface {
	// ServerFor returns the server responsible for key.
	ServerFor(key string) *core.Server
	// Coordinator returns the server the session is attached to (transaction
	// coordinator, §II-C).
	Coordinator() *core.Server
	// PartitionOf returns the partition index of key.
	PartitionOf(key string) int
}

// Config parameterizes a Session.
type Config struct {
	// Router locates the client's local (same-DC) servers.
	Router Router
	// NumDCs sizes the dependency vectors.
	NumDCs int
	// Mode is the session's starting protocol. Defaults to Optimistic.
	Mode core.Mode
	// RequestLatency, when positive, is the injected one-way client↔server
	// delay inside the DC (clients are collocated with servers in the paper,
	// so the default is zero).
	RequestLatency time.Duration
	// AutoFallback enables HA-POCC session recovery: on ErrSessionClosed the
	// session re-initializes pessimistically and retries; it promotes back
	// to optimistic when the coordinator stops suspecting a partition.
	AutoFallback bool
	// SlotRetryBudget bounds how long one operation keeps retrying through
	// core.ErrWrongSlotEpoch while a reshard migrates its key's slot. It
	// must exceed the deployment's reshard drain bound, or a session parked
	// on a fenced slot surfaces the error for a migration that completes
	// moments later. 0 selects a default of 60s (twice the cluster's
	// default drain bound).
	SlotRetryBudget time.Duration
}

// Session is a client session. A session must be used by one goroutine at a
// time for its operations to form a single thread of execution; the struct is
// nevertheless internally synchronized so monitoring code may inspect it.
type Session struct {
	cfg Config

	mu   sync.Mutex
	mode core.Mode
	dv   vclock.VC // DV_c: dependencies of the client's writes
	rdv  vclock.VC // RDV_c: dependencies of the client's reads

	// opScratch is the RDV copy handed to the server for one operation.
	// Servers only read it (and never retain it past the call), and a
	// session runs one operation at a time, so the buffer is reused across
	// operations instead of cloning the RDV per request.
	opScratch vclock.VC

	fallbacks  uint64 // times the session fell back to pessimistic
	promotions uint64 // times it was promoted back to optimistic
}

// NewSession opens a session against a data center.
func NewSession(cfg Config) (*Session, error) {
	if cfg.Router == nil {
		return nil, errors.New("client: Router is required")
	}
	if cfg.NumDCs < 1 {
		return nil, errors.New("client: NumDCs must be positive")
	}
	if cfg.Mode == 0 {
		cfg.Mode = core.Optimistic
	}
	return &Session{
		cfg:  cfg,
		mode: cfg.Mode,
		dv:   vclock.New(cfg.NumDCs),
		rdv:  vclock.New(cfg.NumDCs),
	}, nil
}

// Mode returns the session's current protocol mode.
func (s *Session) Mode() core.Mode {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mode
}

// Fallbacks returns how many times the session fell back to the pessimistic
// protocol.
func (s *Session) Fallbacks() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fallbacks
}

// Promotions returns how many times the session was promoted back to the
// optimistic protocol.
func (s *Session) Promotions() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.promotions
}

// DV returns a copy of the session's dependency vector (for tests).
func (s *Session) DV() vclock.VC {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dv.Clone()
}

// RDV returns a copy of the session's read dependency vector (for tests).
func (s *Session) RDV() vclock.VC {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rdv.Clone()
}

// Get reads key (Algorithm 1, lines 1-8).
func (s *Session) Get(key string) ([]byte, error) {
	reply, err := s.getReply(key)
	if err != nil {
		return nil, err
	}
	return reply.Value, nil
}

// GetReply reads key and returns the full reply including causal metadata.
func (s *Session) GetReply(key string) (msg.ItemReply, error) {
	return s.getReply(key)
}

func (s *Session) getReply(key string) (msg.ItemReply, error) {
	var slotDeadline time.Time
	for {
		// Resolved inside the loop: a slot-epoch rejection means the key's
		// slot moved, and the router re-resolves to the new owner.
		srv := s.cfg.Router.ServerFor(key)
		if srv == nil {
			return msg.ItemReply{}, ErrNoDataCenter
		}
		mode, rdv := s.opContext()
		s.injectLatency()
		reply, err := srv.Get(key, rdv, mode)
		s.injectLatency()
		if err != nil {
			if s.handleSessionError(err) {
				continue
			}
			if s.handleSlotEpoch(err, &slotDeadline) {
				continue
			}
			return msg.ItemReply{}, err
		}
		if reply.Exists {
			s.trackRead(reply)
		}
		s.maybePromote()
		return reply, nil
	}
}

// Put writes key (Algorithm 1, lines 9-13).
func (s *Session) Put(key string, value []byte) error {
	_, _, err := s.PutMeta(key, value)
	return err
}

// PutMeta writes key and returns the new version's identity (update time and
// source replica), which test checkers use to track real dependencies.
func (s *Session) PutMeta(key string, value []byte) (vclock.Timestamp, int, error) {
	var slotDeadline time.Time
	for {
		srv := s.cfg.Router.ServerFor(key)
		if srv == nil {
			return 0, 0, ErrNoDataCenter
		}
		s.mu.Lock()
		mode := s.mode
		// Cloned, not scratch: the server takes ownership of dv (it becomes
		// the new version's dependency vector).
		dv := s.dv.Clone()
		s.mu.Unlock()
		s.injectLatency()
		ut, err := srv.Put(key, value, dv, mode)
		s.injectLatency()
		if err != nil {
			if s.handleSessionError(err) {
				continue
			}
			if s.handleSlotEpoch(err, &slotDeadline) {
				continue
			}
			return 0, 0, err
		}
		dc := srv.ID().DC
		s.mu.Lock()
		if ut > s.dv[dc] {
			s.dv[dc] = ut // track the dependency on the new write
		}
		s.mu.Unlock()
		s.maybePromote()
		return ut, dc, nil
	}
}

// ROTx executes a causally consistent read-only transaction (Algorithm 1,
// lines 14-20) and returns the read values keyed by item key. Missing keys
// map to nil values.
func (s *Session) ROTx(keys []string) (map[string][]byte, error) {
	replies, err := s.ROTxReplies(keys)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]byte, len(replies))
	for _, r := range replies {
		if r.Exists {
			out[r.Key] = r.Value
		} else {
			out[r.Key] = nil
		}
	}
	return out, nil
}

// ROTxReplies is ROTx returning full replies including causal metadata.
func (s *Session) ROTxReplies(keys []string) ([]msg.ItemReply, error) {
	var slotDeadline time.Time
	for {
		// Coordinator and the per-key slicing function are resolved per
		// attempt: mid-reshard a slice can land on a partition that no longer
		// owns the key (ErrWrongSlotEpoch), and the retry re-slices the
		// transaction under the refreshed routing table.
		coord := s.cfg.Router.Coordinator()
		if coord == nil {
			return nil, ErrNoDataCenter
		}
		// The snapshot must include everything the client has read AND
		// written (Proposition 4 of the paper assumes the client's writes are
		// in the snapshot): send max(RDV, DV), which covers the writes the
		// plain RDV of Algorithm 1 line 15 would miss. See DESIGN.md §3.
		s.mu.Lock()
		mode := s.mode
		s.opScratch = vclock.MaxInto(s.opScratch, s.rdv, s.dv)
		rdv := s.opScratch
		s.mu.Unlock()
		s.injectLatency()
		replies, err := coord.ROTx(keys, rdv, mode, s.cfg.Router.PartitionOf)
		s.injectLatency()
		if err != nil {
			if s.handleSessionError(err) {
				continue
			}
			if s.handleSlotEpoch(err, &slotDeadline) {
				continue
			}
			return nil, err
		}
		for _, r := range replies {
			if r.Exists {
				s.trackRead(r) // "read d as if it was the result of a GET"
			}
		}
		s.maybePromote()
		return replies, nil
	}
}

// opContext snapshots the mode and RDV for one operation. The returned
// vector is the session's reusable scratch buffer: valid until the next
// operation starts.
func (s *Session) opContext() (core.Mode, vclock.VC) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.opScratch = s.opScratch.CopyFrom(s.rdv)
	return s.mode, s.opScratch
}

// trackRead applies Algorithm 1 lines 4-6: merge the returned item's
// dependencies into RDV and DV, then record the direct dependency on the
// item itself in DV.
func (s *Session) trackRead(r msg.ItemReply) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rdv.MaxInPlace(r.Deps)
	s.dv.MaxInPlace(s.rdv)
	if r.SrcReplica >= 0 && r.SrcReplica < len(s.dv) && r.UpdateTime > s.dv[r.SrcReplica] {
		s.dv[r.SrcReplica] = r.UpdateTime
	}
}

// handleSessionError reports whether the operation should be retried after a
// session re-initialization. Only ErrSessionClosed with AutoFallback enabled
// triggers recovery: the session drops its optimistic dependency state and
// continues pessimistically (§III-B).
func (s *Session) handleSessionError(err error) bool {
	if !s.cfg.AutoFallback || !errors.Is(err, core.ErrSessionClosed) {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mode = core.Pessimistic
	s.dv = vclock.New(s.cfg.NumDCs)
	s.rdv = vclock.New(s.cfg.NumDCs)
	s.fallbacks++
	return true
}

// handleSlotEpoch reports whether the operation should be retried after a
// routing refresh. It pauses briefly so the retry loop does not spin while a
// reshard drains, and gives up once the operation's budget is exhausted (the
// caller then surfaces ErrWrongSlotEpoch — the write was never accepted, so
// failing is safe). deadline is per operation, armed on the first rejection.
func (s *Session) handleSlotEpoch(err error, deadline *time.Time) bool {
	if !errors.Is(err, core.ErrWrongSlotEpoch) {
		return false
	}
	if deadline.IsZero() {
		budget := s.cfg.SlotRetryBudget
		if budget <= 0 {
			budget = defaultSlotRetryBudget
		}
		*deadline = time.Now().Add(budget)
	} else if time.Now().After(*deadline) {
		return false
	}
	time.Sleep(slotRetryDelay)
	return true
}

// maybePromote switches a fallen-back session to optimistic again once the
// coordinator no longer suspects a partition.
func (s *Session) maybePromote() {
	if !s.cfg.AutoFallback || s.cfg.Mode != core.Optimistic {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.mode != core.Pessimistic {
		return
	}
	coord := s.cfg.Router.Coordinator()
	if coord == nil {
		return
	}
	if !coord.Suspected() {
		// Promotion re-initializes the session like fallback does: the
		// pessimistic dependency state is safe to carry forward (it is
		// stable), so it is kept.
		s.mode = core.Optimistic
		s.promotions++
	}
}

// injectLatency emulates the client↔server hop inside the DC.
func (s *Session) injectLatency() {
	if s.cfg.RequestLatency > 0 {
		time.Sleep(s.cfg.RequestLatency)
	}
}
