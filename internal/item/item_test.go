package item

import "testing"

func TestNewerByTimestamp(t *testing.T) {
	a := &Version{UpdateTime: 10, SrcReplica: 2}
	b := &Version{UpdateTime: 5, SrcReplica: 0}
	if !a.Newer(b) || b.Newer(a) {
		t.Fatal("higher update time must win")
	}
}

func TestNewerTieBreaksOnLowestReplica(t *testing.T) {
	a := &Version{UpdateTime: 10, SrcReplica: 0}
	b := &Version{UpdateTime: 10, SrcReplica: 2}
	if !a.Newer(b) {
		t.Fatal("on a timestamp tie the lowest source replica must win")
	}
	if b.Newer(a) {
		t.Fatal("LWW order must be antisymmetric")
	}
}

func TestNewerIsTotalOnDistinctVersions(t *testing.T) {
	vs := []*Version{
		{UpdateTime: 1, SrcReplica: 0},
		{UpdateTime: 1, SrcReplica: 1},
		{UpdateTime: 2, SrcReplica: 0},
	}
	for i, a := range vs {
		for j, b := range vs {
			if i == j {
				continue
			}
			if a.Newer(b) == b.Newer(a) {
				t.Fatalf("versions %d and %d are not totally ordered", i, j)
			}
		}
	}
}

func TestSame(t *testing.T) {
	a := &Version{Key: "x", UpdateTime: 7, SrcReplica: 1}
	b := &Version{Key: "x", UpdateTime: 7, SrcReplica: 1, Value: []byte("different")}
	if !a.Same(b) {
		t.Fatal("same (ut, sr) must be the same version")
	}
	c := &Version{UpdateTime: 7, SrcReplica: 2}
	if a.Same(c) {
		t.Fatal("different source replicas are different versions")
	}
}
