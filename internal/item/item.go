// Package item defines the versioned data-item metadata of the protocols.
// A version d is the tuple ⟨k, v, sr, ut, dv⟩ of the paper (§IV-A): key,
// value, source replica (the DC where the PUT was executed), update time (the
// physical timestamp assigned at the source replica) and dependency vector
// (one entry per DC, tracking potential causal dependencies).
package item

import "repro/internal/vclock"

// Version is one immutable version of a data item. Versions are never
// mutated after creation, so they can be shared across goroutines and DCs
// without copying.
type Version struct {
	Key        string
	Value      []byte
	SrcReplica int
	UpdateTime vclock.Timestamp
	Deps       vclock.VC
	// Optimistic marks versions written by optimistic sessions. HA-POCC
	// exposes such local items to pessimistic (fallback) sessions only once
	// they are stable, because they may depend on remote items that have not
	// been replicated yet (§IV-C).
	Optimistic bool
}

// Newer reports whether v is ordered after o by the last-writer-wins rule:
// higher update timestamp wins; ties are broken by the source replica id,
// lowest winning (§IV-B).
func (v *Version) Newer(o *Version) bool {
	if v.UpdateTime != o.UpdateTime {
		return v.UpdateTime > o.UpdateTime
	}
	return v.SrcReplica < o.SrcReplica
}

// Same reports whether v and o denote the same version (same origin and
// timestamp). Used to make replication idempotent.
func (v *Version) Same(o *Version) bool {
	return v.UpdateTime == o.UpdateTime && v.SrcReplica == o.SrcReplica
}
