// Failover demonstrates the two recovery mechanisms of the reproduction:
//
//  1. HA-POCC session fallback (§III-B of the paper): during a network
//     partition an optimistic session whose read blocks on a missing
//     dependency is closed by the server, falls back to the pessimistic
//     protocol (serving stale but causally safe data), and is promoted back
//     to the optimistic protocol once the partition heals.
//  2. Durable partition-server crash recovery: with Config.DataDir set,
//     every server journals its versions to a write-ahead log; a killed
//     server reopens from its data directory with its version chains and
//     VV floor rebuilt, and sessions keep working against the recovered
//     replica.
package main

import (
	"errors"
	"fmt"
	"log"
	"os"
	"time"

	occ "repro"
)

func main() {
	sessionFallback()
	crashRecovery()
}

// crashRecovery kills a durable partition server mid-session and reads the
// surviving data back from the recovered WAL.
func crashRecovery() {
	fmt.Println("\n== durable crash recovery ==")
	dir, err := os.MkdirTemp("", "pocc-failover-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	store, err := occ.Open(occ.Config{
		DataCenters: 2,
		Partitions:  2,
		Engine:      occ.POCC,
		Latency:     occ.UniformProfile(100*time.Microsecond, 2*time.Millisecond),
		DataDir:     dir,
		Seed:        17,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	sess, err := store.Session(0)
	if err != nil {
		log.Fatal(err)
	}
	key := pick(store, 0, "ledger:%d")
	for i := 1; i <= 5; i++ {
		if err := sess.Put(key, []byte(fmt.Sprintf("balance-v%d", i))); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("DC0 wrote 5 versions of %s; WAL at %s\n", key, dir)

	// Kill the partition server owning the key and reopen it from disk.
	if err := store.RestartServer(0, store.PartitionOf(key)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("partition server crashed and recovered from its data dir")

	reader, err := store.Session(0)
	if err != nil {
		log.Fatal(err)
	}
	var v []byte
	waitFor(func() bool {
		var errGet error
		v, errGet = reader.Get(key)
		if errors.Is(errGet, occ.ErrStopped) {
			return false // raced the restart; retry
		}
		if errGet != nil {
			log.Fatal(errGet)
		}
		return string(v) == "balance-v5"
	})
	fmt.Printf("after recovery: %s=%q — the write-ahead log preserved the partition\n", key, v)
}

// sessionFallback is the original HA-POCC network-partition scenario.
func sessionFallback() {
	fmt.Println("== HA-POCC session fallback ==")
	store, err := occ.Open(occ.Config{
		DataCenters:           2,
		Partitions:            2,
		Engine:                occ.HAPOCC,
		Latency:               occ.UniformProfile(100*time.Microsecond, 2*time.Millisecond),
		StabilizationInterval: 5 * time.Millisecond,
		BlockTimeout:          100 * time.Millisecond,
		Seed:                  13,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	// Keys on different partitions, so their replication paths diverge.
	keyX := pick(store, 0, "inventory:%d")
	keyY := pick(store, 1, "orders:%d")
	store.Seed(keyX, []byte("x-v0"))
	store.Seed(keyY, []byte("y-v0"))

	writer, err := store.Session(0)
	if err != nil {
		log.Fatal(err)
	}
	reader, err := store.Session(1)
	if err != nil {
		log.Fatal(err)
	}

	// Cut only partition 0's replication path: the new version of X is
	// stuck, while Y — which causally depends on X — replicates fine. This
	// is exactly the OCC blocking hazard of §III-B.
	store.PartitionReplication(0, 1, store.PartitionOf(keyX), true)
	if err := writer.Put(keyX, []byte("x-v1")); err != nil {
		log.Fatal(err)
	}
	if err := writer.Put(keyY, []byte("y-v1")); err != nil {
		log.Fatal(err)
	}
	fmt.Println("DC0 wrote x-v1 then y-v1; partition 0's replication to DC1 is cut")

	// The reader sees the fresh Y immediately (optimism!), establishing a
	// dependency on the missing X.
	waitFor(func() bool {
		v, errGet := reader.Get(keyY)
		return errGet == nil && string(v) == "y-v1"
	})
	fmt.Printf("DC1 reads y-v1 (optimistic, depends on the still-missing x-v1)\n")

	// Reading X now blocks on the missing dependency. After BlockTimeout the
	// server suspects a partition and closes the session; the client library
	// transparently re-initializes it in pessimistic mode and retries. The
	// pessimistic read serves the stale-but-stable x-v0.
	start := time.Now()
	x, err := reader.Get(keyX)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DC1 read x=%q after %v; pessimistic=%v fallbacks=%d\n",
		x, time.Since(start).Round(time.Millisecond), reader.Pessimistic(), reader.Fallbacks())
	if !reader.Pessimistic() {
		log.Fatal("expected the session to fall back to the pessimistic protocol")
	}

	// Operations keep completing during the partition — availability
	// restored at the cost of freshness.
	for i := 0; i < 3; i++ {
		if _, err := reader.Get(keyY); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("DC1 keeps serving reads pessimistically during the partition")

	// Heal. The stuck x-v1 drains, the server stops suspecting a partition,
	// and the session is promoted back to the optimistic protocol.
	store.PartitionReplication(0, 1, store.PartitionOf(keyX), false)
	waitFor(func() bool {
		if _, errGet := reader.Get(keyX); errGet != nil {
			log.Fatal(errGet)
		}
		return !reader.Pessimistic()
	})
	x, _ = reader.Get(keyX)
	fmt.Printf("after heal: x=%q pessimistic=%v promotions=%d\n",
		x, reader.Pessimistic(), reader.Promotions())
}

// pick returns a key formatted from pattern that lands on the wanted
// partition.
func pick(store *occ.Store, partition int, pattern string) string {
	for i := 0; ; i++ {
		k := fmt.Sprintf(pattern, i)
		if store.PartitionOf(k) == partition {
			return k
		}
	}
}

func waitFor(cond func() bool) {
	for !cond() {
		time.Sleep(time.Millisecond)
	}
}
