// Snapshots demonstrates what read-only transactions add on top of causally
// consistent GETs. A writer updates a two-key record — first the detail row,
// then the summary that causally depends on it, tagging both with the same
// round number. Readers in another data center fetch the pair either with
// two independent GETs or with one RO-TX:
//
//   - Two GETs each return causally safe values, but the *pair* can be torn:
//     reading the detail first and the summary second can yield a summary
//     from round n next to a detail from round n-1, because each GET
//     independently picks the freshest version at its own point in time.
//     (Note the opposite order — summary first — is self-healing under OCC:
//     the summary's dependency vector forces the later detail read to wait
//     for the matching round. The snapshot guarantee only exists for the
//     order the application happens to need it in if it uses RO-TX.)
//   - A RO-TX returns a causal snapshot: if the summary of round n is in the
//     snapshot, the detail of round n is too (Proposition 4 of the paper).
//
// The example counts torn pairs under both access patterns.
package main

import (
	"fmt"
	"log"
	"strconv"
	"strings"
	"sync"
	"time"

	occ "repro"
)

const (
	rounds   = 400
	readersN = 4
)

func main() {
	store, err := occ.Open(occ.Config{
		DataCenters: 2,
		Partitions:  4,
		Engine:      occ.POCC,
		Latency:     occ.AWSProfile(0.05),
		JitterFrac:  0.4,
		Seed:        17,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	// Pick the two keys on different partitions so they replicate over
	// independent links (that is where pairs can tear).
	detailKey := pickKey(store, 0, "order:%d:items")
	summryKey := pickKey(store, 1, "order:%d:summary")
	store.Seed(detailKey, []byte("round=0 items=0"))
	store.Seed(summryKey, []byte("round=0 total=0"))

	fmt.Printf("detail on partition %d, summary on partition %d\n",
		store.PartitionOf(detailKey), store.PartitionOf(summryKey))

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Writer in DC0: detail first, then the summary that depends on it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		sess, err := store.Session(0)
		if err != nil {
			log.Fatal(err)
		}
		for r := 1; r <= rounds; r++ {
			if err := sess.Put(detailKey, []byte(fmt.Sprintf("round=%d items=%d", r, r*3))); err != nil {
				log.Fatal(err)
			}
			if err := sess.Put(summryKey, []byte(fmt.Sprintf("round=%d total=%d", r, r*30))); err != nil {
				log.Fatal(err)
			}
			time.Sleep(time.Millisecond)
		}
		close(stop)
	}()

	type counts struct{ reads, torn int }
	results := make([]counts, 2*readersN) // first half: GET pairs, second: RO-TX

	// Readers in DC1.
	for i := 0; i < readersN; i++ {
		for mode := 0; mode < 2; mode++ {
			wg.Add(1)
			go func(i, mode int) {
				defer wg.Done()
				sess, err := store.Session(1)
				if err != nil {
					log.Fatal(err)
				}
				idx := mode*readersN + i
				for {
					select {
					case <-stop:
						return
					default:
					}
					var detail, summary []byte
					if mode == 0 {
						// Independent GETs: detail first, then the summary —
						// the order in which the pair can tear.
						detail, err = sess.Get(detailKey)
						if err != nil {
							log.Fatal(err)
						}
						summary, err = sess.Get(summryKey)
						if err != nil {
							log.Fatal(err)
						}
					} else {
						snap, errTx := sess.ROTx([]string{detailKey, summryKey})
						if errTx != nil {
							log.Fatal(errTx)
						}
						detail, summary = snap[detailKey], snap[summryKey]
					}
					results[idx].reads++
					if roundOf(summary) > roundOf(detail) {
						// The summary is from a newer round than the detail:
						// the pair is torn. (detail newer than summary is
						// fine — the detail was simply written first.)
						results[idx].torn++
					}
					time.Sleep(500 * time.Microsecond)
				}
			}(i, mode)
		}
	}
	wg.Wait()

	var get, tx counts
	for i := 0; i < readersN; i++ {
		get.reads += results[i].reads
		get.torn += results[i].torn
		tx.reads += results[readersN+i].reads
		tx.torn += results[readersN+i].torn
	}
	fmt.Printf("independent GET pairs: %6d reads, %4d torn (%.2f%%)\n",
		get.reads, get.torn, pct(get.torn, get.reads))
	fmt.Printf("RO-TX snapshots:       %6d reads, %4d torn (%.2f%%)\n",
		tx.reads, tx.torn, pct(tx.torn, tx.reads))
	if tx.torn > 0 {
		log.Fatal("BUG: a causal snapshot returned a torn pair")
	}
	fmt.Println("\nRO-TX snapshots can never tear the pair: if the snapshot contains the")
	fmt.Println("summary of round n, it contains everything that summary depends on.")
}

// pickKey returns a key formatted from pattern that lands on the wanted
// partition.
func pickKey(store *occ.Store, partition int, pattern string) string {
	for i := 0; ; i++ {
		k := fmt.Sprintf(pattern, i)
		if store.PartitionOf(k) == partition {
			return k
		}
	}
}

// roundOf extracts the round number from "round=N ..." payloads.
func roundOf(v []byte) int {
	s := string(v)
	s = strings.TrimPrefix(s, "round=")
	if i := strings.IndexByte(s, ' '); i >= 0 {
		s = s[:i]
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return -1
	}
	return n
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
