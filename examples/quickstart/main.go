// Quickstart: open a 3-DC POCC deployment, write in one data center, read in
// the others, and run a causally consistent read-only transaction.
package main

import (
	"fmt"
	"log"
	"time"

	occ "repro"
)

func main() {
	// Three data centers (think Oregon / Virginia / Ireland, scaled-down
	// latencies so the example runs fast), four partitions each.
	store, err := occ.Open(occ.Config{
		DataCenters: 3,
		Partitions:  4,
		Engine:      occ.POCC,
		Latency:     occ.AWSProfile(0.05), // 5% of the real AWS delays
		Seed:        1,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	oregon, err := store.Session(0)
	if err != nil {
		log.Fatal(err)
	}
	if err := oregon.Put("user:42:name", []byte("ada")); err != nil {
		log.Fatal(err)
	}
	if err := oregon.Put("user:42:city", []byte("london")); err != nil {
		log.Fatal(err)
	}
	fmt.Println("oregon wrote user:42 profile")

	// A session in the same DC reads its own writes immediately.
	name, err := oregon.Get("user:42:name")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("oregon reads name = %s\n", name)

	// Remote DCs see the writes once replication delivers them; POCC makes
	// them visible the moment they arrive, with no stabilization delay.
	ireland, err := store.Session(2)
	if err != nil {
		log.Fatal(err)
	}
	for {
		city, err := ireland.Get("user:42:city")
		if err != nil {
			log.Fatal(err)
		}
		if city != nil {
			fmt.Printf("ireland reads city = %s\n", city)
			break
		}
		time.Sleep(time.Millisecond)
	}

	// Read-only transactions return a causally consistent snapshot across
	// partitions.
	snapshot, err := ireland.ROTx([]string{"user:42:name", "user:42:city"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ireland RO-TX snapshot: name=%s city=%s\n",
		snapshot["user:42:name"], snapshot["user:42:city"])

	stats := store.Stats()
	fmt.Printf("server ops=%d blocked=%d (prob %.2e)\n",
		stats.Operations, stats.BlockedOperations, stats.BlockingProbability)
}
