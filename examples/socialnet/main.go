// Socialnet demonstrates why causal consistency matters with the classic
// photo-then-comment anomaly: Alice uploads a photo and then comments on it
// from one data center; Bob, reading from another data center, must never
// see the comment without the photo — even though the two records live on
// different partitions and replicate independently.
//
// The example deliberately delays the photo's replication link so the
// comment arrives in Bob's data center first, then shows how POCC's lazy
// dependency resolution blocks Bob's photo read until the dependency arrives
// instead of exposing an inconsistent state.
package main

import (
	"fmt"
	"log"
	"time"

	occ "repro"
)

func main() {
	store, err := occ.Open(occ.Config{
		DataCenters: 2,
		Partitions:  2,
		Engine:      occ.POCC,
		Latency:     occ.UniformProfile(100*time.Microsecond, 2*time.Millisecond),
		Seed:        7,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	// Find keys on distinct partitions so photo and comment replicate over
	// different links.
	photoKey, commentKey := pickKeys(store)
	fmt.Printf("photo on partition %d, comment on partition %d\n",
		store.PartitionOf(photoKey), store.PartitionOf(commentKey))

	alice, err := store.Session(0)
	if err != nil {
		log.Fatal(err)
	}
	bob, err := store.Session(1)
	if err != nil {
		log.Fatal(err)
	}

	// Hold replication to DC1 while Alice posts, so both records are queued
	// and race to Bob's data center when the network heals.
	store.PartitionNetwork(0, 1, true)
	if err := alice.Put(photoKey, []byte("photo-of-cat.jpg")); err != nil {
		log.Fatal(err)
	}
	if err := alice.Put(commentKey, []byte("alice: look at my cat!")); err != nil {
		log.Fatal(err)
	}
	fmt.Println("alice posted photo then comment (replication to DC1 is stuck)")

	// Bob sees neither record yet — consistent, just stale.
	photo, _ := bob.Get(photoKey)
	comment, _ := bob.Get(commentKey)
	fmt.Printf("bob during partition: photo=%q comment=%q\n", photo, comment)

	// Heal the network. The records replicate; whatever order they arrive
	// in, Bob can never observe comment-without-photo: if he reads the
	// comment first, his next photo read carries the comment's dependency
	// vector, and the server holds the read until the photo is in.
	store.PartitionNetwork(0, 1, false)
	for {
		comment, err = bob.Get(commentKey)
		if err != nil {
			log.Fatal(err)
		}
		if comment != nil {
			break
		}
		time.Sleep(200 * time.Microsecond)
	}
	fmt.Printf("bob sees comment: %q\n", comment)

	photo, err = bob.Get(photoKey)
	if err != nil {
		log.Fatal(err)
	}
	if photo == nil {
		log.Fatal("CAUSALITY VIOLATION: comment visible without the photo")
	}
	fmt.Printf("bob sees photo:   %q (causality preserved)\n", photo)

	st := store.Stats()
	fmt.Printf("blocked reads: %d (mean stall %v)\n",
		st.BlockedOperations, st.MeanBlockingTime)
}

// pickKeys returns two keys on different partitions of a 2-partition layout.
func pickKeys(store *occ.Store) (photo, comment string) {
	photo = "photo:1000"
	for i := 0; ; i++ {
		comment = fmt.Sprintf("comment:%d", i)
		if store.PartitionOf(comment) != store.PartitionOf(photo) {
			return photo, comment
		}
	}
}
