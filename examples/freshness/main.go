// Freshness compares the data staleness of POCC and Cure* head to head: the
// same workload runs against both engines, and the example reports how often
// each system returned an item that had a fresher version already received
// in the local data center — the paper's central claim (OCC maximizes the
// freshness of data returned to clients).
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	occ "repro"
)

const (
	writers  = 4
	readers  = 8
	duration = 2 * time.Second
	keys     = 16
)

func main() {
	for _, engine := range []occ.Engine{occ.CureStar, occ.POCC} {
		stats, messages := run(engine)
		fmt.Printf("%-8s old reads: %6.3f%%   unmerged: %6.3f%%   blocked ops: %d (mean %v)   messages: %d\n",
			engine, stats.PercentOldReads, stats.PercentUnmergedReads,
			stats.BlockedOperations, stats.MeanBlockingTime, messages)
	}
	fmt.Println("\nPOCC returns the freshest received version, so its old-read rate is (near) zero;")
	fmt.Println("Cure* hides versions until its stabilization protocol declares them stable.")
}

func run(engine occ.Engine) (occ.Stats, uint64) {
	store, err := occ.Open(occ.Config{
		DataCenters: 3,
		Partitions:  4,
		Engine:      engine,
		// Full-strength stabilization lag relative to the network: 20% AWS
		// latencies with the default 5 ms stabilization period.
		Latency: occ.AWSProfile(0.2),
		Seed:    11,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	for i := 0; i < keys; i++ {
		store.Seed(key(i), []byte("initial"))
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Writers keep updating keys from DC0 and DC1.
	for w := 0; w < writers; w++ {
		sess, err := store.Session(w % 2)
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(w int, sess *occ.Session) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := sess.Put(key((w+i)%keys), []byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					log.Fatal(err)
				}
				time.Sleep(500 * time.Microsecond)
			}
		}(w, sess)
	}

	// Readers hammer DC2, the farthest data center, where staleness is most
	// visible.
	for r := 0; r < readers; r++ {
		sess, err := store.Session(2)
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(r int, sess *occ.Session) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := sess.Get(key((r + i) % keys)); err != nil {
					log.Fatal(err)
				}
				time.Sleep(200 * time.Microsecond)
			}
		}(r, sess)
	}

	time.Sleep(duration)
	close(stop)
	wg.Wait()
	return store.Stats(), store.Messages()
}

func key(i int) string { return fmt.Sprintf("item:%d", i) }
