package occ

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/keyspace"
	"repro/internal/netemu"
	"repro/internal/storage"
)

// Engine selects the consistency protocol of a Store.
type Engine int

// Engines.
const (
	// POCC is Optimistic Causal Consistency: maximum freshness, blocking
	// lazy dependency resolution.
	POCC Engine = iota + 1
	// CureStar is the pessimistic baseline (a Cure re-implementation with
	// GET/PUT support): stable-visibility reads via a stabilization protocol.
	CureStar
	// HAPOCC is highly available POCC: optimistic with pessimistic fallback
	// during network partitions.
	HAPOCC
)

func (e Engine) String() string {
	switch e {
	case POCC:
		return "POCC"
	case CureStar:
		return "Cure*"
	case HAPOCC:
		return "HA-POCC"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// ErrSessionClosed is returned by HA-POCC sessions without auto-fallback
// when the server suspects a network partition.
var ErrSessionClosed = core.ErrSessionClosed

// ErrStopped is returned by operations that raced a stopped server — most
// commonly a RestartServer in progress. It is transient: retry once the
// restarted server is back.
var ErrStopped = core.ErrStopped

// ErrWrongSlotEpoch is returned by operations whose key's hash slot moved
// to another partition mid-operation and the server-side retry budget
// expired. It is retryable: refresh routing (automatic inside sessions) and
// retry. The network front door re-maps this across the wire so remote
// clients can drive the same retry policy with errors.Is.
var ErrWrongSlotEpoch = core.ErrWrongSlotEpoch

// LatencyProfile gives the one-way network delay between two data centers;
// src == dst is the intra-DC delay.
type LatencyProfile func(srcDC, dstDC int) time.Duration

// AWSProfile emulates the paper's testbed (Oregon, Virginia, Ireland RTTs of
// roughly 70/140/80 ms), scaled by the given factor. Scale 1.0 is the real
// thing; small scales (e.g. 0.02) keep experiments fast.
func AWSProfile(scale float64) LatencyProfile {
	inner := cluster.AWSLatency(scale)
	return func(src, dst int) time.Duration {
		return inner(netemu.NodeID{DC: src}, netemu.NodeID{DC: dst})
	}
}

// UniformProfile applies fixed intra- and inter-DC delays.
func UniformProfile(intra, inter time.Duration) LatencyProfile {
	return func(src, dst int) time.Duration {
		if src == dst {
			return intra
		}
		return inter
	}
}

// Config parameterizes a Store.
type Config struct {
	// DataCenters (M) and Partitions (N) shape the deployment. A full copy
	// of the data lives in every data center, sharded over N partitions.
	DataCenters int
	Partitions  int
	// Engine selects the consistency protocol. Required.
	Engine Engine
	// Latency is the emulated network profile. Nil means near-zero latency.
	Latency LatencyProfile
	// JitterFrac adds uniform jitter in [0, JitterFrac·delay) per message.
	JitterFrac float64
	// ClockSkew bounds the per-node physical-clock offset (emulated NTP).
	ClockSkew time.Duration
	// RawPhysicalClocks reverts nodes to raw skewed physical clocks. The
	// default is hybrid logical/physical clocks, whose timestamp assignment
	// is insensitive to ClockSkew (see cluster.Config.RawPhysicalClocks).
	RawPhysicalClocks bool
	// LeanStabilization switches the GSS exchange to scalar HLC watermarks
	// on most ticks (Okapi-style lean stabilization).
	LeanStabilization bool
	// HeartbeatInterval is Δ of the protocol; defaults to 1 ms.
	HeartbeatInterval time.Duration
	// StabilizationInterval is the GSS exchange period; defaults to 5 ms for
	// CureStar and 500 ms for HAPOCC.
	StabilizationInterval time.Duration
	// GCInterval enables transaction-aware garbage collection (0 disables).
	GCInterval time.Duration
	// BlockTimeout is HA-POCC's partition-suspicion threshold; defaults to
	// 250 ms for HAPOCC.
	BlockTimeout time.Duration
	// Seed makes the emulation reproducible.
	Seed uint64
	// TCP carries inter-node traffic over real loopback TCP connections
	// instead of the emulated network. Latency, jitter and partition
	// injection are unavailable in this mode (PartitionNetwork and
	// PartitionReplication become no-ops).
	TCP bool
	// DataDir enables durable storage: every partition server persists its
	// versions to a write-ahead log under DataDir/dc<m>-p<n> and recovers
	// them when reopened — both on RestartServer and when a whole Store is
	// re-Opened over the same directory. Empty (the default) keeps the
	// in-memory engines: fastest, but a killed server loses its partition.
	DataDir string
	// CheckpointBytes is the WAL growth that arms a snapshot checkpoint on
	// the next garbage-collection pass (0 = 1 MiB, negative disables
	// checkpointing). Ignored without DataDir.
	CheckpointBytes int64
	// SegmentBytes is the WAL segment roll size (0 = 4 MiB). Ignored
	// without DataDir.
	SegmentBytes int64
	// NoSync skips the per-commit fsync — the bottom rung of the durability
	// ladder (see storage.AckMode for the ladder in full): much faster on
	// slow filesystems, but a machine crash may lose the latest commits (a
	// process crash usually does not). Ignored without DataDir.
	NoSync bool
	// NoFsync is the old name for NoSync; either field enables it.
	//
	// Deprecated: set NoSync (the WAL and storage layers' canonical name).
	NoFsync bool
	// AckMode picks where on the durability ladder local PUTs are
	// acknowledged: AckSync (default) returns only after the write's commit
	// group is fsynced; AckGrouped returns after the in-memory insert and
	// WAL staging, letting the background committer fsync the group — far
	// lower PUT latency, with durability trailing by at most one in-flight
	// commit group. Replication and catch-up completeness always wait on the
	// sync boundary regardless. Ignored without DataDir.
	AckMode AckMode
	// GroupCommitWindow is how long the WAL committer lingers to coalesce
	// concurrent commits into one fsync (0 = no added delay; pipelining
	// alone already batches whatever accumulates during the previous
	// fsync). Ignored without DataDir.
	GroupCommitWindow time.Duration
	// CatchUp selects the replication catch-up mode. CatchUpAuto (default)
	// enables sequenced replication streams and WAL-shipped resync exactly
	// when the deployment is durable (DataDir set): a replica that loses
	// part of the update stream — a crashed sender's unflushed tail, or a
	// receiver cut off from the network — detects the gap through per-link
	// sequence numbers and recovers the missing versions from its sibling's
	// write-ahead log, with bounded data in flight. CatchUpOn forces it,
	// CatchUpOff disables it.
	CatchUp CatchUpMode
	// CatchUpMaxInFlight bounds the un-acked bytes per catch-up stream
	// (0 = 1 MiB): the sender's backpressure window.
	CatchUpMaxInFlight int
	// MaxDataCenters reserves capacity for data centers joining at runtime
	// (AddDataCenter): every server's causal metadata vectors are sized to
	// it up front. 0 means DataCenters — fixed membership, no joins. A
	// departed DC's slot is never reused, so this bounds the total joins
	// over the store's lifetime.
	MaxDataCenters int
	// MaxPartitions reserves capacity for partition servers added at runtime
	// (SplitPartition), the partition-axis analogue of MaxDataCenters. 0
	// means Partitions — a fixed keyspace layout.
	MaxPartitions int
	// JoinTimeout bounds how long a joining data center keeps soliciting the
	// deployment before giving up; WaitForJoin then tears the half-joined DC
	// down cleanly and reports the failure. 0 retries forever.
	JoinTimeout time.Duration
	// GCMaxHoldback bounds how long garbage collection defers pruning for a
	// replication link that is frozen, catching up or joining: the GC vector
	// is clamped to the laggard's resume floor until it drains or the bound
	// expires. Past the bound the holdback is released — a laggard frozen
	// longer must re-bootstrap via a full resync. 0 selects the default
	// (10 s); negative holds back forever. Ignored without GCInterval.
	GCMaxHoldback time.Duration
}

// AckMode selects where on the durability ladder local PUTs are
// acknowledged (Config.AckMode).
type AckMode int

// Ack modes.
const (
	// AckSync acknowledges a PUT only after its commit group is durable.
	AckSync AckMode = iota
	// AckGrouped acknowledges a PUT once it is staged on the WAL commit
	// pipeline; the fsync it rides happens in the background.
	AckGrouped
)

// CatchUpMode selects the replication catch-up behavior (Config.CatchUp).
type CatchUpMode int

// Catch-up modes.
const (
	// CatchUpAuto enables catch-up exactly when the deployment is durable.
	CatchUpAuto CatchUpMode = iota
	// CatchUpOn forces catch-up on.
	CatchUpOn
	// CatchUpOff disables catch-up: a crashed server's unflushed
	// replication tail is silently lost (the pre-catch-up semantics).
	CatchUpOff
)

// Store is a running geo-replicated deployment.
type Store struct {
	inner  *cluster.Cluster
	engine Engine
}

// Open builds and starts a Store.
func Open(cfg Config) (*Store, error) {
	var eng cluster.Engine
	switch cfg.Engine {
	case POCC:
		eng = cluster.POCC
	case CureStar:
		eng = cluster.Cure
	case HAPOCC:
		eng = cluster.HAPOCC
	default:
		return nil, errors.New("occ: Config.Engine must be POCC, CureStar or HAPOCC")
	}
	var lat netemu.LatencyFunc
	if cfg.Latency != nil {
		profile := cfg.Latency
		lat = func(src, dst netemu.NodeID) time.Duration {
			return profile(src.DC, dst.DC)
		}
	}
	var catchUp cluster.CatchUpMode
	switch cfg.CatchUp {
	case CatchUpOn:
		catchUp = cluster.CatchUpOn
	case CatchUpOff:
		catchUp = cluster.CatchUpOff
	}
	ackMode := storage.AckSync
	if cfg.AckMode == AckGrouped {
		ackMode = storage.AckGrouped
	}
	inner, err := cluster.New(cluster.Config{
		NumDCs:                cfg.DataCenters,
		NumPartitions:         cfg.Partitions,
		Engine:                eng,
		HeartbeatInterval:     cfg.HeartbeatInterval,
		StabilizationInterval: cfg.StabilizationInterval,
		GCInterval:            cfg.GCInterval,
		PutDepWait:            true,
		BlockTimeout:          cfg.BlockTimeout,
		ClockSkew:             cfg.ClockSkew,
		RawPhysicalClocks:     cfg.RawPhysicalClocks,
		LeanStabilization:     cfg.LeanStabilization,
		Latency:               lat,
		JitterFrac:            cfg.JitterFrac,
		Seed:                  cfg.Seed,
		TCP:                   cfg.TCP,
		DataDir:               cfg.DataDir,
		Durable: storage.DurableOptions{
			CheckpointBytes: cfg.CheckpointBytes,
			SegmentBytes:    cfg.SegmentBytes,
			NoSync:          cfg.NoSync || cfg.NoFsync,
			AckMode:         ackMode,
			GroupWindow:     cfg.GroupCommitWindow,
		},
		CatchUp:            catchUp,
		CatchUpMaxInFlight: cfg.CatchUpMaxInFlight,
		MaxDCs:             cfg.MaxDataCenters,
		MaxPartitions:      cfg.MaxPartitions,
		JoinTimeout:        cfg.JoinTimeout,
		GCMaxHoldback:      cfg.GCMaxHoldback,
	})
	if err != nil {
		return nil, fmt.Errorf("occ: %w", err)
	}
	return &Store{inner: inner, engine: cfg.Engine}, nil
}

// Close shuts the deployment down.
func (s *Store) Close() { s.inner.Close() }

// Engine returns the store's protocol.
func (s *Store) Engine() Engine { return s.engine }

// DataCenters returns the number of data-center slots created so far,
// including departed ones (slots are never reused, so this is one past the
// highest DC id a session may target).
func (s *Store) DataCenters() int { return s.inner.NumDCs() }

// MaxDataCenters returns the store's DC-slot capacity.
func (s *Store) MaxDataCenters() int { return s.inner.MaxDCs() }

// AddDataCenter grows the deployment by one data center and returns its id.
// The new DC's servers bootstrap themselves from their siblings through
// WAL-shipped catch-up — the live update stream starts flowing to them
// immediately, history arrives in the background — and announce themselves
// active once every replication link is synced; use WaitForJoin to block
// until then. Requires Config.DataDir (the bootstrap streams from the
// siblings' write-ahead logs) and MaxDataCenters headroom.
func (s *Store) AddDataCenter() (int, error) {
	dc, err := s.inner.AddDC()
	if err != nil {
		return 0, fmt.Errorf("occ: %w", err)
	}
	return dc, nil
}

// WaitForJoin blocks until data center dc — previously started by
// AddDataCenter — has fully bootstrapped: every partition's history caught
// up and the DC announced active. Sessions opened against it before that
// are served optimistically from whatever has arrived.
func (s *Store) WaitForJoin(dc int, timeout time.Duration) error {
	if err := s.inner.WaitForJoin(dc, timeout); err != nil {
		return fmt.Errorf("occ: %w", err)
	}
	return nil
}

// RemoveDataCenter removes a data center: its servers flush their
// replication buffers, announce the departure on every link (so the
// surviving DCs hold its complete history and freeze its vector entries at
// the final timestamp), and shut down. Sessions pinned to the removed DC
// fail their next operation; the DC id is retired for good.
func (s *Store) RemoveDataCenter(dc int) error {
	if err := s.inner.RemoveDC(dc); err != nil {
		return fmt.Errorf("occ: %w", err)
	}
	return nil
}

// ForceRemoveDataCenter forcibly removes a crashed data center — one that
// can no longer announce its own departure. The surviving DCs agree, per
// replication link, on the highest update timestamp any of them received
// from the dead DC, freeze its membership entry at that final, discard any
// version above it, and resume stabilization; a subsequent joiner bootstraps
// the departed history from the survivors. If the DC's servers are somehow
// still running they are killed first: an evicted DC can never come back
// (its un-acknowledged suffix is gone for good). timeout bounds each
// partition's agreement round (0 selects a default).
func (s *Store) ForceRemoveDataCenter(dc int, timeout time.Duration) error {
	if err := s.inner.ForceRemoveDC(dc, timeout); err != nil {
		return fmt.Errorf("occ: %w", err)
	}
	return nil
}

// KillDataCenter crashes every server of a data center at once, without
// removing it from the membership: the survivors' stabilization freezes at
// the dead DC's last replicated timestamps until ForceRemoveDataCenter
// evicts it. Requires Config.DataDir.
func (s *Store) KillDataCenter(dc int) error {
	if err := s.inner.KillDC(dc); err != nil {
		return fmt.Errorf("occ: %w", err)
	}
	return nil
}

// Partitions returns the number of live partition servers per data center
// (grows when SplitPartition runs).
func (s *Store) Partitions() int { return s.inner.NumPartitions() }

// MaxPartitions returns the store's partition capacity.
func (s *Store) MaxPartitions() int { return s.inner.MaxPartitions() }

// PartitionOf returns the partition currently responsible for key: the
// static hash layout until the first reshard, the slot table afterwards.
func (s *Store) PartitionOf(key string) int {
	return s.inner.PartitionOf(key)
}

// SplitPartition grows every data center by one partition server: half of
// the donor partition's hash slots are reassigned to the new server under
// the next slot-table epoch, the new owners are bootstrapped from their
// local donors' history, and routing flips — all while sessions keep
// operating (they retry through the epoch change transparently). Returns
// the new partition's index. Requires MaxPartitions headroom.
func (s *Store) SplitPartition(donor int) (int, error) {
	p, err := s.inner.SplitPartition(donor)
	if err != nil {
		return 0, fmt.Errorf("occ: %w", err)
	}
	return p, nil
}

// MoveSlots reassigns the given hash slots (each in [0, keyspace.NumSlots))
// to an existing partition, migrating their history before routing flips.
func (s *Store) MoveSlots(slots []int, to int) error {
	if err := s.inner.MoveSlots(slots, to); err != nil {
		return fmt.Errorf("occ: %w", err)
	}
	return nil
}

// SlotTable returns a copy of the store's slot routing table, or nil while
// the deployment still routes by the static hash layout (no reshard ran).
func (s *Store) SlotTable() *keyspace.SlotMap { return s.inner.SlotTable() }

// Seed loads an initial value for key into every data center, immediately
// visible and stable (used to populate a store before a workload).
func (s *Store) Seed(key string, value []byte) { s.inner.Seed(key, value) }

// PartitionNetwork cuts (down=true) or heals (down=false) every network link
// between two data centers, emulating an inter-DC network partition.
func (s *Store) PartitionNetwork(dcA, dcB int, down bool) {
	if net := s.inner.Network(); net != nil {
		net.PartitionDCs(dcA, dcB, down)
	}
}

// PartitionReplication cuts (or heals) the replication path of a single
// partition between two data centers, in both directions — the asymmetric
// failure that delays one partition's updates while others flow normally.
func (s *Store) PartitionReplication(dcA, dcB, partition int, down bool) {
	net := s.inner.Network()
	if net == nil {
		return
	}
	a := netemu.NodeID{DC: dcA, Partition: partition}
	b := netemu.NodeID{DC: dcB, Partition: partition}
	net.SetLinkDown(a, b, down)
	net.SetLinkDown(b, a, down)
}

// Messages returns the total number of protocol messages sent so far, a
// proxy for communication overhead.
func (s *Store) Messages() uint64 { return s.inner.Messages() }

// RestartServer simulates a partition-server crash and recovery: the server
// is killed and a fresh one reopens the same durable data directory,
// rebuilding its version chains and version-vector floor from the snapshot
// and log tail. With catch-up enabled (the default for durable
// deployments), the kill is a true crash — the unflushed replication tail
// is discarded and messages arriving while the server is down are dropped —
// and the replicas resynchronize afterwards by WAL-shipped catch-up.
// In-flight operations against the restarting server fail with ErrStopped
// and may be retried; sessions otherwise keep working transparently. It
// requires Config.DataDir (an in-memory server would restart empty).
func (s *Store) RestartServer(dc, partition int) error {
	return s.inner.RestartServer(dc, partition)
}

// Stats summarizes the server-side statistics of the deployment.
type Stats struct {
	// Operations counts server-side operations (GETs, PUTs, slice reads).
	Operations uint64
	// BlockedOperations counts operations that stalled waiting for a missing
	// dependency.
	BlockedOperations uint64
	// BlockingProbability is BlockedOperations / Operations.
	BlockingProbability float64
	// MeanBlockingTime is the average stall duration of blocked operations.
	MeanBlockingTime time.Duration
	// PercentOldReads is the share of reads that returned an item with a
	// fresher version hidden in its chain.
	PercentOldReads float64
	// PercentUnmergedReads is the share of reads whose chain held versions
	// not yet visible under the engine's visibility rule.
	PercentUnmergedReads float64
	// Keys is the number of distinct keys stored across the deployment
	// (each data center holds a full copy, so every replica counts).
	Keys int
	// Versions is the total number of stored versions across all chains.
	// Keys and Versions come from the engines' single-pass Stats, so the
	// pair is snapshot-consistent per shard instead of drifting between
	// two separate scans.
	Versions int
	// StorageError is the first sticky persistence error reported by any
	// durable engine ("" when healthy). A failing engine keeps serving from
	// memory, but acknowledged writes may no longer survive a crash — treat
	// a non-empty value as an operational alarm (see Store.StorageErr).
	StorageError string
	// ReplicationLag is, per data center, the worst replication lag any of
	// its partition servers observes against any remote DC: its own
	// version-vector entry minus the last-applied remote entry, in time
	// units. A link frozen by an in-flight catch-up shows up as growing
	// lag.
	ReplicationLag []time.Duration
	// ReplicationLagPerLink breaks the lag down by replication link:
	// [dst][src] is the worst lag any partition server of DC dst observes
	// on its inbound stream from DC src (zero on the diagonal and for
	// departed DCs). ReplicationLag[dst] is the row maximum; the breakdown
	// tells a slow link apart from a generally lagging DC.
	ReplicationLagPerLink [][]time.Duration
	// CatchUps counts completed inbound catch-up rounds (a replica detected
	// a gap in a replication stream and resynchronized from its sibling's
	// WAL); CatchUpsServed counts the streams shipped to lagging siblings.
	// Both stay zero unless catch-up is enabled (Config.CatchUp).
	CatchUps       uint64
	CatchUpsServed uint64
	// CatchUpsActive is the number of replication links currently frozen
	// awaiting a catch-up stream.
	CatchUpsActive int
	// FullResyncs counts catch-up rounds that had to re-ship the full
	// history because the incremental range was checkpoint-pruned away on
	// the sender.
	FullResyncs uint64
	// LinkStates[dst][src] is the health of DC dst's inbound replication
	// link from DC src: "active", "catching-up", "frozen", "evicted",
	// "idle", or "self" on the diagonal (the worst state across dst's
	// partition servers).
	LinkStates [][]string
	// GCHoldbackAge is how long the oldest laggard (a frozen, catching-up or
	// joining link) has been deferring garbage collection, 0 when none is.
	GCHoldbackAge time.Duration
	// Fsyncs counts WAL file and directory syncs across all durable engines;
	// CommitGroups counts commit groups fsynced. Records / CommitGroups is
	// the mean group-commit batch size. All durable-path fields stay zero
	// for in-memory deployments (no Config.DataDir).
	Fsyncs       uint64
	CommitGroups uint64
	// WALRecords counts records committed through the WAL pipeline.
	WALRecords uint64
	// CommitGroupP50 and CommitGroupMax describe the commit-group size
	// distribution: the median bucket (lower bound, records per group) and
	// the largest group observed.
	CommitGroupP50 uint64
	CommitGroupMax uint64
	// AckToDurableMean and AckToDurableMax are the mean and worst lag
	// between staging a record on the commit pipeline and its group
	// becoming durable — the window an AckGrouped PUT's durability trails
	// its acknowledgement.
	AckToDurableMean time.Duration
	AckToDurableMax  time.Duration
	// SeekHits counts catch-up streams served through the WAL's segment
	// range index; FullScans counts streams that walked the full durable
	// history; PartsSkipped is the number of cold snapshot/segment parts
	// the index let those seeks skip entirely.
	SeekHits     uint64
	FullScans    uint64
	PartsSkipped uint64
	// Partitions is the number of live partition servers per DC; SlotEpoch
	// is the slot-table generation (0 until the first reshard — the static
	// hash layout).
	Partitions int
	SlotEpoch  uint64
}

// MaxReplicationLag returns the worst entry of ReplicationLag.
func (s Stats) MaxReplicationLag() time.Duration {
	var max time.Duration
	for _, l := range s.ReplicationLag {
		if l > max {
			max = l
		}
	}
	return max
}

// Stats aggregates the current server-side statistics.
func (s *Store) Stats() Stats {
	agg := s.inner.Metrics()
	blocking := agg.Blocking()
	stale := agg.GetStale
	stale.Add(agg.TxStale)
	storage := s.inner.StorageStats()
	repl := s.inner.ReplicationStats()
	st := Stats{
		Operations:            blocking.Ops,
		BlockedOperations:     blocking.Blocked,
		BlockingProbability:   blocking.Probability(),
		MeanBlockingTime:      blocking.MeanBlockTime(),
		PercentOldReads:       stale.PercentOld(),
		PercentUnmergedReads:  stale.PercentUnmerged(),
		Keys:                  storage.Keys,
		Versions:              storage.Versions,
		ReplicationLag:        repl.LagPerDC,
		ReplicationLagPerLink: repl.LagPerLink,
		CatchUps:              repl.CatchUpsCompleted,
		CatchUpsServed:        repl.CatchUpsServed,
		CatchUpsActive:        repl.CatchUpsActive,
		FullResyncs:           repl.FullResyncs,
		LinkStates:            repl.LinkStates,
		GCHoldbackAge:         repl.GCHoldbackAge,
	}
	durable := s.inner.DurableStats()
	st.Fsyncs = durable.Fsyncs
	st.CommitGroups = durable.Groups
	st.WALRecords = durable.Records
	st.CommitGroupP50 = durable.GroupP50()
	st.CommitGroupMax = durable.GroupMax
	if durable.Groups > 0 {
		st.AckToDurableMean = time.Duration(durable.AckLagSumNS / int64(durable.Groups))
	}
	st.AckToDurableMax = time.Duration(durable.AckLagMaxNS)
	st.SeekHits = durable.SeekHits
	st.FullScans = durable.FullScans
	st.PartsSkipped = durable.PartsSkipped
	st.Partitions = s.inner.NumPartitions()
	if tbl := s.inner.SlotTable(); tbl != nil {
		st.SlotEpoch = tbl.Epoch
	}
	if err := s.inner.StorageErr(); err != nil {
		st.StorageError = err.Error()
	}
	return st
}

// StorageErr returns the first sticky persistence error reported by any
// partition server's durable engine, or nil. Only durable deployments
// (Config.DataDir) can report one.
func (s *Store) StorageErr() error { return s.inner.StorageErr() }

// Session is a client session pinned to one data center. Use one session per
// goroutine; its operations form a single thread of execution in the
// causality order.
type Session struct {
	inner *client.Session
	dc    int
}

// Session opens a client session against data center dc.
func (s *Store) Session(dc int) (*Session, error) {
	inner, err := s.inner.NewSession(dc)
	if err != nil {
		return nil, fmt.Errorf("occ: %w", err)
	}
	return &Session{inner: inner, dc: dc}, nil
}

// DC returns the data center the session is attached to.
func (s *Session) DC() int { return s.dc }

// Get returns the value of key, or nil if the key has no visible version.
// Under POCC this is the freshest version the local data center has
// received whose dependencies are compatible with the session's history.
func (s *Session) Get(key string) ([]byte, error) { return s.inner.Get(key) }

// Put assigns value to key, creating a new version that causally depends on
// everything the session has read and written.
func (s *Session) Put(key string, value []byte) error { return s.inner.Put(key, value) }

// ROTx reads keys atomically from a causally consistent snapshot. Missing
// keys map to nil values.
func (s *Session) ROTx(keys []string) (map[string][]byte, error) { return s.inner.ROTx(keys) }

// Pessimistic reports whether the session currently runs the pessimistic
// fallback protocol (HA-POCC during a suspected partition).
func (s *Session) Pessimistic() bool { return s.inner.Mode() == core.Pessimistic }

// Fallbacks returns how many times the session fell back to the pessimistic
// protocol.
func (s *Session) Fallbacks() uint64 { return s.inner.Fallbacks() }

// Promotions returns how many times the session was promoted back to the
// optimistic protocol.
func (s *Session) Promotions() uint64 { return s.inner.Promotions() }
