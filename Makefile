GO ?= go

.PHONY: all vet build test race check bench

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Guards the fine-grained server locking: the packages that own or exercise
# the lock-free hot path must stay race-clean.
race:
	$(GO) test -race -count=1 ./internal/core/... ./internal/storage/... ./internal/wal/... ./internal/tcpnet/...

# Guards durability: the crash-recovery scenarios (mid-workload server
# restarts, cold restarts, the recovery drill) must stay race-clean too.
race-recovery:
	$(GO) test -race -count=1 -run 'Recovery|Durable' ./internal/cluster/... ./internal/harness/... .

check: vet build test race race-recovery

# Hot-path microbenchmarks (the numbers tracked across PRs).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkGetPOCC|BenchmarkPutPOCC|BenchmarkROTxPOCC' -benchmem .
	$(GO) test -run '^$$' -bench 'BenchmarkWireCodec' -benchmem ./internal/wire/
	$(GO) test -run '^$$' -bench 'BenchmarkVClockOps|BenchmarkStorage' -benchmem ./internal/vclock/ ./internal/storage/
