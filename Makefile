GO ?= go

.PHONY: all vet build test race race-recovery race-catchup race-membership race-reshard race-frontdoor race-hlc race-chaos check bench

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# -shuffle=on randomizes test (and subtest-source) order every run, keeping
# the suites free of inter-test ordering dependencies.
test:
	$(GO) test -shuffle=on ./...

# Guards the fine-grained server locking: the packages that own or exercise
# the lock-free hot path must stay race-clean.
race:
	$(GO) test -race -count=1 ./internal/core/... ./internal/storage/... ./internal/wal/... ./internal/tcpnet/...

# Guards durability: the crash-recovery scenarios (mid-workload server
# restarts, cold restarts, the recovery drill) must stay race-clean too.
race-recovery:
	$(GO) test -race -count=1 -run 'Recovery|Durable' ./internal/cluster/... ./internal/harness/... .

# Guards the replication plane: sequenced streams, gap detection and
# WAL-shipped catch-up (crashed buffer tails, dropped links) under -race.
race-catchup:
	$(GO) test -race -count=1 -run 'CatchUp' ./internal/repl/... ./internal/cluster/...

# Guards dynamic membership: DC joins bootstrapped by catch-up under a live
# causally-checked workload, graceful leaves, and the stabilization gate.
race-membership:
	$(GO) test -race -count=1 -run 'Membership|Join|Leave' ./internal/repl/... ./internal/cluster/... .

# Guards elastic resharding: slot-table epochs, live partition splits and
# slot moves under a checked workload (drain-then-flip, WAL bootstrap of the
# new owner, client retry through the epoch fence) under -race.
race-reshard:
	$(GO) test -race -count=1 -run 'Split|MoveSlots|Slot|Reshard' ./internal/keyspace/... ./internal/cluster/... ./internal/kvserver/...

# Guards the binary front door: the pipelined serving path (per-session FIFO
# workers, out-of-order completion across sessions, single coalescing writer)
# and the client pool (in-flight table, multiplexed sessions) under -race,
# including the blocked-GET no-stall and restart/reshard churn scenarios.
race-frontdoor:
	$(GO) test -race -count=1 -run 'FrontDoor|TextLarge' ./internal/kvserver/ ./internal/client/ ./internal/wire/

# Guards the hybrid-clock plane: HLC packing/merge properties, the negative
# -skew clamp regression, the lean watermark stabilization safety rule, the
# skew-insensitive PUT clock-wait, and the visibility probe — under -race
# (the clock's CAS loop and Observe path run on every hot-path message).
race-hlc:
	$(GO) test -race -count=1 -run 'HLC|ClockSkew|Skew|Watermark|Visibility|NegativeSkew' ./internal/clock/... ./internal/vclock/... ./internal/core/... ./internal/cluster/... ./internal/harness/...

# The chaos plane: a ~30 s seeded fault-injection soak (crash/restarts,
# DC kills + forced removal, join/leave churn, link flaps, latency
# reprofiles) with live causal checking, under -race. Override CHAOS_SEED to
# replay a reported failure, CHAOS_SECONDS to change the soak length.
race-chaos:
	CHAOS_SECONDS=$${CHAOS_SECONDS:-30} $(GO) test -race -count=1 -v -run 'TestChaosSoak' ./internal/chaos/

check: vet build test race race-recovery race-catchup race-membership race-reshard race-frontdoor race-hlc race-chaos

# Hot-path microbenchmarks (the numbers tracked across PRs), published as a
# dated JSON trajectory: `make bench` runs the Fig-adjacent cluster
# benchmarks plus the durable-path and catch-up-seek ones and writes
# BENCH_<date>.json via cmd/benchjson (commit it to extend the trajectory).
BENCH_DATE ?= $(shell date +%F)
BENCH_OUT  ?= BENCH_$(BENCH_DATE).json
bench:
	{ \
	  $(GO) test -run '^$$' -bench 'BenchmarkGetPOCC|BenchmarkPutPOCC|BenchmarkROTxPOCC|BenchmarkCatchUpThroughput|BenchmarkDurablePut|BenchmarkCatchUpSmallGap|BenchmarkReshardThroughput|BenchmarkRemoteVisibility' -benchmem . && \
	  $(GO) test -run '^$$' -bench 'BenchmarkWireCodec' -benchmem ./internal/wire/ && \
	  $(GO) test -run '^$$' -bench 'BenchmarkFrontDoorText|BenchmarkFrontDoorPipelined|BenchmarkFrontDoorPooled' -benchmem ./internal/kvserver/ && \
	  $(GO) test -run '^$$' -bench 'BenchmarkSlotRouting' -benchmem ./internal/keyspace/ && \
	  $(GO) test -run '^$$' -bench 'BenchmarkVClockOps|BenchmarkStorage' -benchmem ./internal/vclock/ ./internal/storage/ ; \
	} | tee /dev/stderr | $(GO) run ./cmd/benchjson -date $(BENCH_DATE) > $(BENCH_OUT)
	@echo "wrote $(BENCH_OUT)"
