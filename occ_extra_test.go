package occ_test

import (
	"testing"
	"time"

	occ "repro"
)

func TestTCPModePublicAPI(t *testing.T) {
	s, err := occ.Open(occ.Config{
		DataCenters: 2, Partitions: 2, Engine: occ.POCC,
		TCP:  true,
		Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	w, err := s.Session(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Put("wire", []byte("tcp")); err != nil {
		t.Fatal(err)
	}
	r, err := s.Session(1)
	if err != nil {
		t.Fatal(err)
	}
	if !waitFor(t, 5*time.Second, func() bool {
		v, errGet := r.Get("wire")
		return errGet == nil && string(v) == "tcp"
	}) {
		t.Fatal("write never replicated over TCP")
	}
	if s.Messages() == 0 {
		t.Fatal("TCP messages must be counted")
	}
	// Fault injection is a no-op in TCP mode, not a panic.
	s.PartitionNetwork(0, 1, true)
	s.PartitionReplication(0, 1, 0, true)
	if _, err := w.Get("wire"); err != nil {
		t.Fatal(err)
	}
}

func TestAWSProfileShape(t *testing.T) {
	p := occ.AWSProfile(1.0)
	intra := p(0, 0)
	if intra <= 0 || intra > time.Millisecond {
		t.Fatalf("intra-DC latency = %v", intra)
	}
	orVA := p(0, 1)
	orIE := p(0, 2)
	if orVA < 30*time.Millisecond || orVA > 40*time.Millisecond {
		t.Fatalf("Oregon-Virginia one-way = %v, want ~35ms", orVA)
	}
	if orIE < 60*time.Millisecond || orIE > 80*time.Millisecond {
		t.Fatalf("Oregon-Ireland one-way = %v, want ~70ms", orIE)
	}
	if orIE <= orVA {
		t.Fatal("Ireland must be farther from Oregon than Virginia")
	}
	// Scaling.
	half := occ.AWSProfile(0.5)(0, 1)
	if half >= orVA {
		t.Fatalf("scaled latency %v must be below full %v", half, orVA)
	}
}

func TestUniformProfile(t *testing.T) {
	p := occ.UniformProfile(time.Millisecond, 10*time.Millisecond)
	if p(1, 1) != time.Millisecond {
		t.Fatal("intra-DC delay wrong")
	}
	if p(0, 2) != 10*time.Millisecond {
		t.Fatal("inter-DC delay wrong")
	}
}

func TestHAPOCCSessionFallbackCounters(t *testing.T) {
	s := open(t, occ.Config{
		DataCenters: 2, Partitions: 2, Engine: occ.HAPOCC,
		StabilizationInterval: 5 * time.Millisecond,
		BlockTimeout:          30 * time.Millisecond,
		Seed:                  22,
	})
	// Find two keys on distinct partitions.
	keyA, keyB := "", ""
	for i := 0; keyA == "" || keyB == ""; i++ {
		k := "k" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		switch s.PartitionOf(k) {
		case 0:
			if keyA == "" {
				keyA = k
			}
		case 1:
			if keyB == "" {
				keyB = k
			}
		}
	}
	s.Seed(keyA, []byte("a0"))
	s.Seed(keyB, []byte("b0"))

	s.PartitionReplication(0, 1, 0, true)
	w, err := s.Session(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Put(keyA, []byte("a1")); err != nil {
		t.Fatal(err)
	}
	if err := w.Put(keyB, []byte("b1")); err != nil {
		t.Fatal(err)
	}

	r, err := s.Session(1)
	if err != nil {
		t.Fatal(err)
	}
	if !waitFor(t, 5*time.Second, func() bool {
		v, errGet := r.Get(keyB)
		return errGet == nil && string(v) == "b1"
	}) {
		t.Fatal("b1 never replicated")
	}
	// Blocks on the missing a1, times out, falls back.
	v, err := r.Get(keyA)
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "a0" {
		t.Fatalf("fallback read %q", v)
	}
	if !r.Pessimistic() || r.Fallbacks() != 1 {
		t.Fatalf("pessimistic=%v fallbacks=%d", r.Pessimistic(), r.Fallbacks())
	}
	s.PartitionReplication(0, 1, 0, false)
	if !waitFor(t, 5*time.Second, func() bool {
		if _, errGet := r.Get(keyA); errGet != nil {
			t.Fatal(errGet)
		}
		return !r.Pessimistic() && r.Promotions() == 1
	}) {
		t.Fatal("session never promoted")
	}
}
